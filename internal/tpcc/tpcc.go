// Package tpcc implements the TPC-C OLTP benchmark over the transactional
// key-value interface, following the paper's setup (§11): the five standard
// transactions, plus the two secondary-index tables the paper adds for
// looking up customers by last name and a customer's latest order.
//
// The scale is configurable; the paper runs 10 warehouses. Row counts per
// warehouse are scaled down from the TPC-C spec by the Scale* parameters so
// the benchmark loads quickly through Obladi's epoched write batches.
package tpcc

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"

	"obladi/internal/kvtxn"
)

// Config scales the benchmark.
type Config struct {
	Warehouses       int
	DistrictsPerWH   int // spec: 10
	CustomersPerDist int // spec: 3000
	Items            int // spec: 100000
	InitialOrders    int // orders preloaded per district
	MaxOrderLines    int // spec: 5-15; scaled down for small ValueSize
	PaymentByNamePct int // spec: 60
	Seed             uint64
}

// Defaults returns a CI-scale configuration.
func Defaults() Config {
	return Config{
		Warehouses:       2,
		DistrictsPerWH:   2,
		CustomersPerDist: 10,
		Items:            50,
		InitialOrders:    3,
		MaxOrderLines:    4,
		PaymentByNamePct: 60,
		Seed:             1,
	}
}

// MinValueSize is the block size the workload's rows require.
const MinValueSize = 192

// Last-name syllables per the TPC-C spec.
var syllables = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// lastName derives a spec-style last name from a number.
func lastName(num int) string {
	return syllables[(num/100)%10] + syllables[(num/10)%10] + syllables[num%10]
}

// Key constructors.
func itemKey(i int) string           { return fmt.Sprintf("i:%d", i) }
func warehouseKey(w int) string      { return fmt.Sprintf("w:%d", w) }
func districtKey(w, d int) string    { return fmt.Sprintf("d:%d:%d", w, d) }
func customerKey(w, d, c int) string { return fmt.Sprintf("c:%d:%d:%d", w, d, c) }
func custNameKey(w, d int, last string) string {
	return fmt.Sprintf("cidx:%d:%d:%s", w, d, last)
}
func orderKey(w, d, o int) string       { return fmt.Sprintf("o:%d:%d:%d", w, d, o) }
func latestOrderKey(w, d, c int) string { return fmt.Sprintf("oidx:%d:%d:%d", w, d, c) }
func newOrderKey(w, d, o int) string    { return fmt.Sprintf("no:%d:%d:%d", w, d, o) }
func noQueueKey(w, d int) string        { return fmt.Sprintf("noq:%d:%d", w, d) }
func orderLineKey(w, d, o, n int) string {
	return fmt.Sprintf("ol:%d:%d:%d:%d", w, d, o, n)
}
func stockKey(w, i int) string { return fmt.Sprintf("s:%d:%d", w, i) }
func historyKey(w, d, c, n int) string {
	return fmt.Sprintf("h:%d:%d:%d:%d", w, d, c, n)
}

// Row field layouts (tuples):
//   warehouse: name, taxBp, ytdCents
//   district:  taxBp, ytdCents, nextOID
//   customer:  first, last, balanceCents, ytdPaymentCents, paymentCnt, deliveryCnt
//   cidx:      comma-joined customer ids
//   order:     cid, olCnt, carrier (0 = undelivered)
//   oidx:      latest oid
//   new-order queue: firstUndelivered, nextToCreate (== district nextOID mirror)
//   order line: itemID, qty, amountCents
//   stock:     qty, ytd, orderCnt
//   item:      name, priceCents

// Load populates the database. It runs many small transactions so it works
// within Obladi's per-epoch write-batch capacity; the caller must run the
// proxy in auto mode or pump it concurrently.
func Load(db kvtxn.DB, cfg Config) error {
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xabcdef))
	put := newBatchPutter(db, 16)
	for i := 0; i < cfg.Items; i++ {
		price := int64(100 + rng.IntN(9900))
		if err := put.add(itemKey(i), kvtxn.Tuple{fmt.Sprintf("item-%d", i), kvtxn.Itoa(price)}); err != nil {
			return err
		}
	}
	for w := 0; w < cfg.Warehouses; w++ {
		wt := kvtxn.Tuple{fmt.Sprintf("wh-%d", w), kvtxn.Itoa(int64(rng.IntN(2000))), "0"}
		if err := put.add(warehouseKey(w), wt); err != nil {
			return err
		}
		for i := 0; i < cfg.Items; i++ {
			st := kvtxn.Tuple{kvtxn.Itoa(int64(10 + rng.IntN(90))), "0", "0"}
			if err := put.add(stockKey(w, i), st); err != nil {
				return err
			}
		}
		for d := 0; d < cfg.DistrictsPerWH; d++ {
			names := make(map[string][]string)
			for c := 0; c < cfg.CustomersPerDist; c++ {
				last := lastName(c % 30) // collisions by design: index lists
				ct := kvtxn.Tuple{fmt.Sprintf("first-%d", c), last, "0", "0", "0", "0"}
				if err := put.add(customerKey(w, d, c), ct); err != nil {
					return err
				}
				names[last] = append(names[last], kvtxn.Itoa(int64(c)))
			}
			for last, ids := range names {
				if err := put.add(custNameKey(w, d, last), kvtxn.Tuple{strings.Join(ids, ",")}); err != nil {
					return err
				}
			}
			nextOID := cfg.InitialOrders
			dt := kvtxn.Tuple{kvtxn.Itoa(int64(rng.IntN(2000))), "0", kvtxn.Itoa(int64(nextOID))}
			if err := put.add(districtKey(w, d), dt); err != nil {
				return err
			}
			if err := put.add(noQueueKey(w, d), kvtxn.Tuple{"0", kvtxn.Itoa(int64(nextOID))}); err != nil {
				return err
			}
			for o := 0; o < cfg.InitialOrders; o++ {
				cid := o % cfg.CustomersPerDist
				olCnt := 1 + rng.IntN(cfg.MaxOrderLines)
				ot := kvtxn.Tuple{kvtxn.Itoa(int64(cid)), kvtxn.Itoa(int64(olCnt)), "0"}
				if err := put.add(orderKey(w, d, o), ot); err != nil {
					return err
				}
				if err := put.add(newOrderKey(w, d, o), kvtxn.Tuple{"1"}); err != nil {
					return err
				}
				if err := put.add(latestOrderKey(w, d, cid), kvtxn.Tuple{kvtxn.Itoa(int64(o))}); err != nil {
					return err
				}
				for n := 0; n < olCnt; n++ {
					item := rng.IntN(cfg.Items)
					olt := kvtxn.Tuple{kvtxn.Itoa(int64(item)), kvtxn.Itoa(int64(1 + rng.IntN(10))), kvtxn.Itoa(int64(rng.IntN(5000)))}
					if err := put.add(orderLineKey(w, d, o, n), olt); err != nil {
						return err
					}
				}
			}
		}
	}
	return put.flush()
}

// batchPutter groups loader writes into transactions of bounded size.
type batchPutter struct {
	db      kvtxn.DB
	perTxn  int
	pending []struct {
		key string
		val []byte
	}
}

func newBatchPutter(db kvtxn.DB, perTxn int) *batchPutter {
	return &batchPutter{db: db, perTxn: perTxn}
}

func (b *batchPutter) add(key string, t kvtxn.Tuple) error {
	b.pending = append(b.pending, struct {
		key string
		val []byte
	}{key, t.Encode()})
	if len(b.pending) >= b.perTxn {
		return b.flush()
	}
	return nil
}

func (b *batchPutter) flush() error {
	if len(b.pending) == 0 {
		return nil
	}
	batch := b.pending
	b.pending = nil
	return kvtxn.RunWithRetries(b.db, 50, func(tx kvtxn.Txn) error {
		for _, p := range batch {
			if err := tx.Write(p.key, p.val); err != nil {
				return err
			}
		}
		return nil
	})
}

// Client generates and executes TPC-C transactions.
type Client struct {
	cfg Config
	rng *rand.Rand
	db  kvtxn.DB
}

// NewClient creates a client with its own RNG stream.
func NewClient(db kvtxn.DB, cfg Config, seed uint64) *Client {
	return &Client{cfg: cfg, rng: rand.New(rand.NewPCG(seed, seed^0x5bd1e995)), db: db}
}

// TxnNames lists the five TPC-C transaction types.
func TxnNames() []string {
	return []string{"new-order", "payment", "order-status", "delivery", "stock-level"}
}

// Next runs one transaction from the standard mix (45/43/4/4/4) and reports
// its name. An ErrAborted outcome counts as an abort, not a failure.
func (c *Client) Next() (string, error) {
	p := c.rng.IntN(100)
	switch {
	case p < 45:
		return "new-order", c.NewOrder()
	case p < 88:
		return "payment", c.Payment()
	case p < 92:
		return "order-status", c.OrderStatus()
	case p < 96:
		return "delivery", c.Delivery()
	default:
		return "stock-level", c.StockLevel()
	}
}

func (c *Client) wh() int   { return c.rng.IntN(c.cfg.Warehouses) }
func (c *Client) dist() int { return c.rng.IntN(c.cfg.DistrictsPerWH) }
func (c *Client) cust() int { return c.rng.IntN(c.cfg.CustomersPerDist) }

// readTuple reads and decodes a row inside tx.
func readTuple(tx kvtxn.Txn, key string) (kvtxn.Tuple, error) {
	v, found, err := tx.Read(key)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("tpcc: missing row %q", key)
	}
	return kvtxn.DecodeTuple(v)
}

// NewOrder implements the new-order transaction.
func (c *Client) NewOrder() error {
	w, d := c.wh(), c.dist()
	cid := c.cust()
	nLines := 1 + c.rng.IntN(c.cfg.MaxOrderLines)
	items := make([]int, 0, nLines)
	seen := make(map[int]bool)
	for len(items) < nLines {
		it := c.rng.IntN(c.cfg.Items)
		if !seen[it] {
			seen[it] = true
			items = append(items, it)
		}
	}
	sort.Ints(items)
	qty := make([]int, nLines)
	for i := range qty {
		qty[i] = 1 + c.rng.IntN(10)
	}
	tx := c.db.Begin()
	defer tx.Abort()
	// Warehouse, district, customer, and all item/stock rows are
	// independent: fetch them in one batch.
	keys := []string{warehouseKey(w), districtKey(w, d), customerKey(w, d, cid), noQueueKey(w, d)}
	for _, it := range items {
		keys = append(keys, itemKey(it), stockKey(w, it))
	}
	res, err := tx.ReadMany(keys)
	if err != nil {
		return err
	}
	rows := make(map[string]kvtxn.Tuple, len(res))
	for _, r := range res {
		if !r.Found {
			return fmt.Errorf("tpcc: missing row %q", r.Key)
		}
		t, err := kvtxn.DecodeTuple(r.Value)
		if err != nil {
			return err
		}
		rows[r.Key] = t
	}
	district := rows[districtKey(w, d)]
	oid := int(district.MustInt(2))
	district.SetInt(2, int64(oid+1))
	if err := tx.Write(districtKey(w, d), district.Encode()); err != nil {
		return err
	}
	noq := rows[noQueueKey(w, d)]
	noq.SetInt(1, int64(oid+1))
	if err := tx.Write(noQueueKey(w, d), noq.Encode()); err != nil {
		return err
	}
	total := int64(0)
	for i, it := range items {
		item := rows[itemKey(it)]
		stock := rows[stockKey(w, it)]
		price := item.MustInt(1)
		q := stock.MustInt(0)
		if q >= int64(qty[i])+10 {
			stock.SetInt(0, q-int64(qty[i]))
		} else {
			stock.SetInt(0, q-int64(qty[i])+91)
		}
		stock.SetInt(1, stock.MustInt(1)+int64(qty[i]))
		stock.SetInt(2, stock.MustInt(2)+1)
		if err := tx.Write(stockKey(w, it), stock.Encode()); err != nil {
			return err
		}
		amount := price * int64(qty[i])
		total += amount
		ol := kvtxn.Tuple{kvtxn.Itoa(int64(it)), kvtxn.Itoa(int64(qty[i])), kvtxn.Itoa(amount)}
		if err := tx.Write(orderLineKey(w, d, oid, i), ol.Encode()); err != nil {
			return err
		}
	}
	order := kvtxn.Tuple{kvtxn.Itoa(int64(cid)), kvtxn.Itoa(int64(len(items))), "0"}
	if err := tx.Write(orderKey(w, d, oid), order.Encode()); err != nil {
		return err
	}
	if err := tx.Write(newOrderKey(w, d, oid), kvtxn.Tuple{"1"}.Encode()); err != nil {
		return err
	}
	if err := tx.Write(latestOrderKey(w, d, cid), kvtxn.Tuple{kvtxn.Itoa(int64(oid))}.Encode()); err != nil {
		return err
	}
	_ = total
	return tx.Commit()
}

// lookupCustomer resolves a customer id, 60% of the time via the last-name
// index (taking the spec's "middle" customer).
func (c *Client) lookupCustomer(tx kvtxn.Txn, w, d int) (int, error) {
	if c.rng.IntN(100) < c.cfg.PaymentByNamePct {
		last := lastName(c.rng.IntN(30))
		v, found, err := tx.Read(custNameKey(w, d, last))
		if err != nil {
			return 0, err
		}
		if found {
			t, err := kvtxn.DecodeTuple(v)
			if err != nil {
				return 0, err
			}
			ids := strings.Split(t[0], ",")
			mid := ids[len(ids)/2]
			var cid int
			if _, err := fmt.Sscanf(mid, "%d", &cid); err != nil {
				return 0, err
			}
			return cid, nil
		}
		// Name not present at this scale: fall back to direct id.
	}
	return c.cust(), nil
}

// Payment implements the payment transaction.
func (c *Client) Payment() error {
	w, d := c.wh(), c.dist()
	amount := int64(100 + c.rng.IntN(500000))
	tx := c.db.Begin()
	defer tx.Abort()
	cid, err := c.lookupCustomer(tx, w, d)
	if err != nil {
		return err
	}
	res, err := tx.ReadMany([]string{warehouseKey(w), districtKey(w, d), customerKey(w, d, cid)})
	if err != nil {
		return err
	}
	for _, r := range res {
		if !r.Found {
			return fmt.Errorf("tpcc: missing row %q", r.Key)
		}
	}
	wt, err := kvtxn.DecodeTuple(res[0].Value)
	if err != nil {
		return err
	}
	dt, err := kvtxn.DecodeTuple(res[1].Value)
	if err != nil {
		return err
	}
	ct, err := kvtxn.DecodeTuple(res[2].Value)
	if err != nil {
		return err
	}
	wt.SetInt(2, wt.MustInt(2)+amount)
	dt.SetInt(1, dt.MustInt(1)+amount)
	ct.SetInt(2, ct.MustInt(2)-amount)
	ct.SetInt(3, ct.MustInt(3)+amount)
	payCnt := ct.MustInt(4) + 1
	ct.SetInt(4, payCnt)
	if err := tx.Write(warehouseKey(w), wt.Encode()); err != nil {
		return err
	}
	if err := tx.Write(districtKey(w, d), dt.Encode()); err != nil {
		return err
	}
	if err := tx.Write(customerKey(w, d, cid), ct.Encode()); err != nil {
		return err
	}
	hist := kvtxn.Tuple{kvtxn.Itoa(amount)}
	if err := tx.Write(historyKey(w, d, cid, int(payCnt)), hist.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// OrderStatus implements the order-status transaction (read only).
func (c *Client) OrderStatus() error {
	w, d := c.wh(), c.dist()
	tx := c.db.Begin()
	defer tx.Abort()
	cid, err := c.lookupCustomer(tx, w, d)
	if err != nil {
		return err
	}
	if _, err := readTuple(tx, customerKey(w, d, cid)); err != nil {
		return err
	}
	v, found, err := tx.Read(latestOrderKey(w, d, cid))
	if err != nil {
		return err
	}
	if found {
		t, err := kvtxn.DecodeTuple(v)
		if err != nil {
			return err
		}
		oid := int(t.MustInt(0))
		order, err := readTuple(tx, orderKey(w, d, oid))
		if err != nil {
			return err
		}
		olCnt := int(order.MustInt(1))
		keys := make([]string, olCnt)
		for i := range keys {
			keys[i] = orderLineKey(w, d, oid, i)
		}
		if _, err := tx.ReadMany(keys); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// ErrNothingToDeliver marks a delivery with an empty new-order queue.
var ErrNothingToDeliver = errors.New("tpcc: no undelivered orders")

// Delivery implements the delivery transaction for one district.
func (c *Client) Delivery() error {
	w, d := c.wh(), c.dist()
	carrier := 1 + c.rng.IntN(10)
	tx := c.db.Begin()
	defer tx.Abort()
	noq, err := readTuple(tx, noQueueKey(w, d))
	if err != nil {
		return err
	}
	first, next := int(noq.MustInt(0)), int(noq.MustInt(1))
	if first >= next {
		// Queue empty; commit the no-op (spec allows skipped deliveries).
		return tx.Commit()
	}
	oid := first
	noq.SetInt(0, int64(first+1))
	if err := tx.Write(noQueueKey(w, d), noq.Encode()); err != nil {
		return err
	}
	if err := tx.Delete(newOrderKey(w, d, oid)); err != nil {
		return err
	}
	order, err := readTuple(tx, orderKey(w, d, oid))
	if err != nil {
		return err
	}
	order.SetInt(2, int64(carrier))
	if err := tx.Write(orderKey(w, d, oid), order.Encode()); err != nil {
		return err
	}
	cid := int(order.MustInt(0))
	olCnt := int(order.MustInt(1))
	keys := make([]string, olCnt)
	for i := range keys {
		keys[i] = orderLineKey(w, d, oid, i)
	}
	res, err := tx.ReadMany(keys)
	if err != nil {
		return err
	}
	total := int64(0)
	for _, r := range res {
		if !r.Found {
			continue
		}
		t, err := kvtxn.DecodeTuple(r.Value)
		if err != nil {
			return err
		}
		total += t.MustInt(2)
	}
	cust, err := readTuple(tx, customerKey(w, d, cid))
	if err != nil {
		return err
	}
	cust.SetInt(2, cust.MustInt(2)+total)
	cust.SetInt(5, cust.MustInt(5)+1)
	if err := tx.Write(customerKey(w, d, cid), cust.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// StockLevel implements the stock-level transaction (read only).
func (c *Client) StockLevel() error {
	w, d := c.wh(), c.dist()
	threshold := int64(10 + c.rng.IntN(10))
	tx := c.db.Begin()
	defer tx.Abort()
	district, err := readTuple(tx, districtKey(w, d))
	if err != nil {
		return err
	}
	nextOID := int(district.MustInt(2))
	lookback := 5
	items := make(map[int]bool)
	var olKeys []string
	type olRef struct{ o, n int }
	var refs []olRef
	for o := nextOID - lookback; o < nextOID; o++ {
		if o < 0 {
			continue
		}
		for n := 0; n < c.cfg.MaxOrderLines; n++ {
			olKeys = append(olKeys, orderLineKey(w, d, o, n))
			refs = append(refs, olRef{o, n})
		}
	}
	res, err := tx.ReadMany(olKeys)
	if err != nil {
		return err
	}
	for _, r := range res {
		if !r.Found {
			continue
		}
		t, err := kvtxn.DecodeTuple(r.Value)
		if err != nil {
			return err
		}
		items[int(t.MustInt(0))] = true
	}
	var stockKeys []string
	var ids []int
	for it := range items {
		ids = append(ids, it)
	}
	sort.Ints(ids)
	for _, it := range ids {
		stockKeys = append(stockKeys, stockKey(w, it))
	}
	sres, err := tx.ReadMany(stockKeys)
	if err != nil {
		return err
	}
	low := 0
	for _, r := range sres {
		if !r.Found {
			continue
		}
		t, err := kvtxn.DecodeTuple(r.Value)
		if err != nil {
			return err
		}
		if t.MustInt(0) < threshold {
			low++
		}
	}
	_ = low
	return tx.Commit()
}

// Verify checks cross-table invariants: district nextOID matches the
// new-order queue mirror, and every undelivered order id in
// [first, next) has a new-order marker. Used by tests. Reads are batched so
// the whole check fits in two read-batch rounds under Obladi.
func Verify(db kvtxn.DB, cfg Config) error {
	return kvtxn.RunWithRetries(db, 20, func(tx kvtxn.Txn) error {
		var keys []string
		for w := 0; w < cfg.Warehouses; w++ {
			for d := 0; d < cfg.DistrictsPerWH; d++ {
				keys = append(keys, districtKey(w, d), noQueueKey(w, d))
			}
		}
		res, err := tx.ReadMany(keys)
		if err != nil {
			return err
		}
		var markerKeys []string
		for i := 0; i < len(res); i += 2 {
			if !res[i].Found || !res[i+1].Found {
				return fmt.Errorf("tpcc: missing district rows %q/%q", res[i].Key, res[i+1].Key)
			}
			dt, err := kvtxn.DecodeTuple(res[i].Value)
			if err != nil {
				return err
			}
			noq, err := kvtxn.DecodeTuple(res[i+1].Value)
			if err != nil {
				return err
			}
			if dt.MustInt(2) != noq.MustInt(1) {
				return fmt.Errorf("tpcc: %s: district nextOID %d != queue mirror %d", res[i].Key, dt.MustInt(2), noq.MustInt(1))
			}
			w, d := 0, 0
			if _, err := fmt.Sscanf(res[i].Key, "d:%d:%d", &w, &d); err != nil {
				return err
			}
			for o := int(noq.MustInt(0)); o < int(noq.MustInt(1)); o++ {
				markerKeys = append(markerKeys, newOrderKey(w, d, o))
			}
		}
		if len(markerKeys) == 0 {
			return nil
		}
		markers, err := tx.ReadMany(markerKeys)
		if err != nil {
			return err
		}
		for _, m := range markers {
			if !m.Found {
				return fmt.Errorf("tpcc: order %q in queue window without marker", m.Key)
			}
		}
		return nil
	})
}
