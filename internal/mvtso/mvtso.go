// Package mvtso implements Obladi's concurrency control unit (§6.1 of the
// paper): multiversioned timestamp ordering with epoch-delayed commits.
//
// Every transaction receives a unique timestamp that fixes its position in
// the serialization order. Writes create uncommitted versions that are
// immediately visible to transactions with higher timestamps; readers record
// write-read dependencies and abort (cascading) if a dependency aborts.
// A write aborts its transaction if a transaction with a higher timestamp
// already read the version it would supersede (the read-marker rule).
//
// Commit decisions are delayed: Commit only marks a transaction as
// "finished". FinalizeEpoch — called by the proxy at an epoch boundary —
// aborts every unfinished transaction, cascades aborts through dependency
// edges, commits the survivors, and emits the deduplicated write set (the
// latest committed version per key) that forms the epoch's ORAM write batch.
package mvtso

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Timestamp orders transactions; it is also the transaction identifier.
type Timestamp uint64

// Status is a transaction's lifecycle state.
type Status uint8

// Transaction states.
const (
	StatusActive   Status = iota // executing
	StatusFinished               // commit requested, awaiting epoch end
	StatusCommitted
	StatusAborted
)

func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusFinished:
		return "finished"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Errors reported to transaction code.
var (
	// ErrAborted is returned by operations on an aborted transaction,
	// including the operation that caused the abort.
	ErrAborted = errors.New("mvtso: transaction aborted")
	// ErrNotActive is returned when operating on a finished transaction.
	ErrNotActive = errors.New("mvtso: transaction not active")
	// ErrNeedFetch signals that the key's base version is not resident;
	// the proxy must schedule an ORAM read and call InstallBase.
	ErrNeedFetch = errors.New("mvtso: base version not resident")
	// ErrWriteBatchFull reports that the epoch's write budget for the key's
	// shard is spent (b_write distinct keys); see SetWriteBudget.
	ErrWriteBatchFull = errors.New("mvtso: epoch write batch full")
)

// version is one entry in a key's version chain.
type version struct {
	writer     Timestamp // 0 = base version fetched from the ORAM
	value      []byte
	absent     bool // base version for a key that does not exist
	tombstone  bool
	readMarker Timestamp // highest timestamp that read this version
}

// chain is a key's version list, sorted by writer timestamp ascending.
type chain struct {
	versions []*version
	hasBase  bool
}

// Txn is a transaction handle. All methods are safe for concurrent use with
// other transactions; a single Txn must not be used concurrently.
type Txn struct {
	ts     Timestamp
	mgr    *Manager
	status Status
	// deps are the uncommitted writers whose values this txn observed.
	deps map[Timestamp]struct{}
	// writes lists keys this txn wrote (for rollback).
	writes map[string]struct{}
	// readers of this txn's writes (reverse dependency edges for cascade).
	dependents map[Timestamp]struct{}
}

// TS returns the transaction's timestamp.
func (t *Txn) TS() Timestamp { return t.ts }

// Manager is the concurrency control unit.
type Manager struct {
	mu     sync.Mutex
	nextTS Timestamp
	chains map[string]*chain
	txns   map[Timestamp]*Txn

	// Write-budget accounting (SetWriteBudget); zero writePerShard means
	// unlimited.
	writePerShard int
	writeShardOf  func(string) int
	writeCounts   []int
	writeKeys     map[string]struct{}

	// epoch statistics
	statConflictAborts  int64
	statCascadingAborts int64
}

// NewManager creates an empty CCU.
func NewManager() *Manager {
	return &Manager{
		chains: make(map[string]*chain),
		txns:   make(map[Timestamp]*Txn),
	}
}

// Begin starts a transaction in the current epoch.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTS++
	t := &Txn{
		ts:         m.nextTS,
		mgr:        m,
		status:     StatusActive,
		deps:       make(map[Timestamp]struct{}),
		writes:     make(map[string]struct{}),
		dependents: make(map[Timestamp]struct{}),
	}
	m.txns[t.ts] = t
	return t
}

// SetWriteBudget enforces the epoch write batch at the write itself: at most
// perShard distinct written keys per shard per epoch generation, refused with
// ErrWriteBatchFull. The budget lives with the CCU — charged under the same
// lock that finalizes the epoch, reset by FinalizeEpoch/AbortAll themselves —
// so a transaction racing the boundary can never carry a charge into a
// generation that forgot it. (A proxy-side reservation map, reset a beat
// after FinalizeEpoch, has exactly that hole: a transaction beginning in the
// finalize window reserves against the dying epoch, the reset wipes the
// reservation, and the next seal overflows its write batch.)
func (m *Manager) SetWriteBudget(shards, perShard int, shardOf func(string) int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writePerShard = perShard
	m.writeShardOf = shardOf
	m.writeCounts = make([]int, shards)
	m.writeKeys = make(map[string]struct{})
}

// reserveWriteLocked charges key against the epoch's write budget. A charge
// sticks until the boundary even if the writer aborts — mirroring the write
// batch the seal pads and executes.
func (m *Manager) reserveWriteLocked(key string) error {
	if m.writePerShard <= 0 {
		return nil
	}
	if _, ok := m.writeKeys[key]; ok {
		return nil
	}
	sh := 0
	if m.writeShardOf != nil {
		sh = m.writeShardOf(key)
	}
	if m.writeCounts[sh] >= m.writePerShard {
		return fmt.Errorf("%w: shard %d at %d keys", ErrWriteBatchFull, sh, m.writePerShard)
	}
	m.writeKeys[key] = struct{}{}
	m.writeCounts[sh]++
	return nil
}

// resetWriteBudgetLocked opens the next generation's budget.
func (m *Manager) resetWriteBudgetLocked() {
	if m.writePerShard <= 0 {
		return
	}
	for i := range m.writeCounts {
		m.writeCounts[i] = 0
	}
	m.writeKeys = make(map[string]struct{})
}

// Status returns a transaction's current state.
func (m *Manager) Status(ts Timestamp) Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	if t, ok := m.txns[ts]; ok {
		return t.status
	}
	return StatusAborted
}

// InstallBase installs the committed pre-epoch value of a key fetched from
// the ORAM. found=false records that the key does not exist. Installing a
// base under a key that already has one is a no-op (concurrent fetches).
func (m *Manager) InstallBase(key string, value []byte, found bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.chains[key]
	if c == nil {
		c = &chain{}
		m.chains[key] = c
	}
	if c.hasBase {
		return
	}
	c.hasBase = true
	base := &version{writer: 0, value: value, absent: !found}
	// The base sorts before every transaction's versions.
	c.versions = append([]*version{base}, c.versions...)
}

// HasBase reports whether a base version is resident for key.
func (m *Manager) HasBase(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.chains[key]
	return c != nil && c.hasBase
}

// Read returns the value of key visible to t: the latest version with
// writer <= t.ts. It records the read marker and, for uncommitted versions,
// a write-read dependency. If the chain holds no version visible to t and
// no base version is resident, Read returns ErrNeedFetch.
func (t *Txn) Read(key string) ([]byte, bool, error) {
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.status == StatusAborted {
		return nil, false, ErrAborted
	}
	if t.status != StatusActive {
		return nil, false, ErrNotActive
	}
	c := m.chains[key]
	var vis *version
	if c != nil {
		for i := len(c.versions) - 1; i >= 0; i-- {
			if c.versions[i].writer <= t.ts {
				vis = c.versions[i]
				break
			}
		}
	}
	if vis == nil {
		if c != nil && c.hasBase {
			// Base exists but sorts above?? impossible: base writer is 0.
			return nil, false, errors.New("mvtso: internal: base version invisible")
		}
		return nil, false, ErrNeedFetch
	}
	if vis.readMarker < t.ts {
		vis.readMarker = t.ts
	}
	if vis.writer != 0 && vis.writer != t.ts {
		writer := m.txns[vis.writer]
		if writer == nil {
			return nil, false, fmt.Errorf("mvtso: internal: version by unknown txn %d", vis.writer)
		}
		// Visible versions by aborted writers are removed eagerly; a
		// finished writer is a legitimate dependency until the epoch ends.
		t.deps[vis.writer] = struct{}{}
		writer.dependents[t.ts] = struct{}{}
	}
	if vis.absent || vis.tombstone {
		return nil, false, nil
	}
	return vis.value, true, nil
}

// Write installs an uncommitted version of key. It aborts t (returning
// ErrAborted) if a transaction with a higher timestamp already read the
// version t would supersede.
func (t *Txn) Write(key string, value []byte) error {
	return t.write(key, value, false)
}

// Delete writes a tombstone for key under the same rules as Write.
func (t *Txn) Delete(key string) error {
	return t.write(key, nil, true)
}

func (t *Txn) write(key string, value []byte, tombstone bool) error {
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.status == StatusAborted {
		return ErrAborted
	}
	if t.status != StatusActive {
		return ErrNotActive
	}
	if err := m.reserveWriteLocked(key); err != nil {
		return err
	}
	c := m.chains[key]
	if c == nil {
		c = &chain{}
		m.chains[key] = c
	}
	// Locate the insertion point and the predecessor version.
	idx := sort.Search(len(c.versions), func(i int) bool {
		return c.versions[i].writer >= t.ts
	})
	if idx < len(c.versions) && c.versions[idx].writer == t.ts {
		// Rewrite by the same transaction. If a later transaction already
		// read the version being replaced, the rewrite would invalidate
		// that read: the read-marker rule applies here too.
		if rm := c.versions[idx].readMarker; rm > t.ts {
			m.statConflictAborts++
			m.abortLocked(t, "self-rewrite after dependent read")
			return fmt.Errorf("%w: key %q version read by txn %d before txn %d's rewrite", ErrAborted, key, rm, t.ts)
		}
		c.versions[idx].value = value
		c.versions[idx].tombstone = tombstone
		c.versions[idx].absent = false
		t.writes[key] = struct{}{}
		return nil
	}
	if idx > 0 {
		pred := c.versions[idx-1]
		if pred.readMarker > t.ts {
			// A later transaction already read the predecessor: writing now
			// would invalidate that read. Timestamp-ordering abort.
			m.statConflictAborts++
			m.abortLocked(t, "write-write/read conflict")
			return fmt.Errorf("%w: key %q read by txn %d after txn %d's visible version", ErrAborted, key, pred.readMarker, t.ts)
		}
	}
	v := &version{writer: t.ts, value: value, tombstone: tombstone}
	c.versions = append(c.versions, nil)
	copy(c.versions[idx+1:], c.versions[idx:])
	c.versions[idx] = v
	t.writes[key] = struct{}{}
	return nil
}

// Commit requests commit: the transaction is marked finished and its fate is
// decided at the epoch boundary (delayed visibility). The caller learns the
// outcome from FinalizeEpoch (the proxy surfaces it to the client).
func (t *Txn) Commit() error {
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	switch t.status {
	case StatusAborted:
		return ErrAborted
	case StatusActive:
		t.status = StatusFinished
		return nil
	default:
		return ErrNotActive
	}
}

// Abort voluntarily aborts the transaction, cascading to dependents.
func (t *Txn) Abort() {
	m := t.mgr
	m.mu.Lock()
	defer m.mu.Unlock()
	if t.status == StatusAborted || t.status == StatusCommitted {
		return
	}
	m.abortLocked(t, "voluntary")
}

// abortLocked marks t aborted, removes its versions, and cascades to every
// transaction that observed them.
func (m *Manager) abortLocked(t *Txn, reason string) {
	if t.status == StatusAborted {
		return
	}
	t.status = StatusAborted
	for key := range t.writes {
		c := m.chains[key]
		if c == nil {
			continue
		}
		for i, v := range c.versions {
			if v.writer == t.ts {
				c.versions = append(c.versions[:i], c.versions[i+1:]...)
				break
			}
		}
	}
	// Cascade: anyone who read this transaction's writes must abort too.
	for dep := range t.dependents {
		if reader, ok := m.txns[dep]; ok && reader.status != StatusAborted {
			m.statCascadingAborts++
			m.abortLocked(reader, "cascading")
		}
	}
}

// Outcome reports an epoch's fate decisions and its deduplicated write set.
type Outcome struct {
	Committed []Timestamp
	Aborted   []Timestamp
	// Writes holds, per key written by a committed transaction, the last
	// committed version in timestamp order — exactly the set Obladi flushes
	// to the ORAM as the epoch's write batch (§6.2).
	Writes []WriteSetEntry
}

// WriteSetEntry is one key's final value for the epoch write batch.
type WriteSetEntry struct {
	Key       string
	Value     []byte
	Tombstone bool
}

// FinalizeEpoch ends the epoch: unfinished transactions abort (no
// transaction spans epochs), aborts cascade, survivors commit. The CCU then
// resets; the next epoch starts with empty version chains (the version cache
// is flushed, reads re-fetch from the ORAM).
func (m *Manager) FinalizeEpoch() Outcome {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Abort every transaction that has not requested commit.
	for _, t := range m.txns {
		if t.status == StatusActive {
			m.abortLocked(t, "epoch boundary")
		}
	}
	// Cascading aborts of finished transactions whose dependencies aborted.
	// abortLocked already cascades eagerly, but a dependency recorded after
	// the dependent finished is caught here; iterate to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, t := range m.txns {
			if t.status != StatusFinished {
				continue
			}
			for dep := range t.deps {
				if d, ok := m.txns[dep]; !ok || d.status == StatusAborted {
					m.statCascadingAborts++
					m.abortLocked(t, "dependency aborted")
					changed = true
					break
				}
			}
		}
	}
	var out Outcome
	for _, t := range m.txns {
		switch t.status {
		case StatusFinished:
			t.status = StatusCommitted
			out.Committed = append(out.Committed, t.ts)
		case StatusAborted:
			out.Aborted = append(out.Aborted, t.ts)
		}
	}
	sort.Slice(out.Committed, func(i, j int) bool { return out.Committed[i] < out.Committed[j] })
	sort.Slice(out.Aborted, func(i, j int) bool { return out.Aborted[i] < out.Aborted[j] })
	// Deduplicated write set: last version per key (aborted versions are
	// already gone; remaining non-base versions belong to committed txns).
	keys := make([]string, 0, len(m.chains))
	for key := range m.chains {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		c := m.chains[key]
		if len(c.versions) == 0 {
			continue
		}
		last := c.versions[len(c.versions)-1]
		if last.writer == 0 {
			continue // only the base version remains: nothing to write back
		}
		out.Writes = append(out.Writes, WriteSetEntry{
			Key:       key,
			Value:     last.value,
			Tombstone: last.tombstone,
		})
	}
	// Reset for the next epoch.
	m.chains = make(map[string]*chain)
	m.txns = make(map[Timestamp]*Txn)
	m.resetWriteBudgetLocked()
	return out
}

// AbortAll aborts every live transaction without committing anyone — the
// fate of an epoch lost to a crash (epoch fate sharing, §6).
func (m *Manager) AbortAll() []Timestamp {
	m.mu.Lock()
	defer m.mu.Unlock()
	var aborted []Timestamp
	for _, t := range m.txns {
		if t.status != StatusCommitted {
			m.abortLocked(t, "epoch abandoned")
			aborted = append(aborted, t.ts)
		}
	}
	m.chains = make(map[string]*chain)
	m.txns = make(map[Timestamp]*Txn)
	m.resetWriteBudgetLocked()
	sort.Slice(aborted, func(i, j int) bool { return aborted[i] < aborted[j] })
	return aborted
}

// Stats reports cumulative abort counters.
func (m *Manager) Stats() (conflictAborts, cascadingAborts int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.statConflictAborts, m.statCascadingAborts
}
