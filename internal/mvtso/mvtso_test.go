package mvtso

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
)

// installAll installs base versions so reads need no fetch.
func installAll(m *Manager, kv map[string]string) {
	for k, v := range kv {
		m.InstallBase(k, []byte(v), true)
	}
}

func TestReadNeedsFetch(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	_, _, err := tx.Read("x")
	if !errors.Is(err, ErrNeedFetch) {
		t.Fatalf("read without base: %v", err)
	}
	m.InstallBase("x", []byte("base"), true)
	v, found, err := tx.Read("x")
	if err != nil || !found || string(v) != "base" {
		t.Fatalf("read after install: %q %v %v", v, found, err)
	}
}

func TestInstallBaseAbsent(t *testing.T) {
	m := NewManager()
	m.InstallBase("gone", nil, false)
	tx := m.Begin()
	_, found, err := tx.Read("gone")
	if err != nil || found {
		t.Fatalf("absent base: found=%v err=%v", found, err)
	}
}

func TestInstallBaseIdempotent(t *testing.T) {
	m := NewManager()
	m.InstallBase("x", []byte("first"), true)
	m.InstallBase("x", []byte("second"), true)
	tx := m.Begin()
	v, _, _ := tx.Read("x")
	if string(v) != "first" {
		t.Fatalf("second InstallBase overwrote base: %q", v)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if err := tx.Write("x", []byte("mine")); err != nil {
		t.Fatal(err)
	}
	v, found, err := tx.Read("x")
	if err != nil || !found || string(v) != "mine" {
		t.Fatalf("own write: %q %v %v", v, found, err)
	}
}

func TestUncommittedVisibleToLaterTxn(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	t2 := m.Begin()
	must(t, t1.Write("a", []byte("from-t1")))
	v, found, err := t2.Read("a")
	if err != nil || !found || string(v) != "from-t1" {
		t.Fatalf("t2 read of t1's uncommitted write: %q %v %v", v, found, err)
	}
	// t2 now depends on t1: if t1 aborts, t2 aborts too.
	t1.Abort()
	if m.Status(t2.ts) != StatusAborted {
		t.Fatal("cascading abort did not reach t2")
	}
}

func TestEarlierTxnDoesNotSeeLaterWrite(t *testing.T) {
	m := NewManager()
	installAll(m, map[string]string{"a": "base"})
	t1 := m.Begin()
	t2 := m.Begin()
	must(t, t2.Write("a", []byte("from-t2")))
	v, _, err := t1.Read("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "base" {
		t.Fatalf("t1 (earlier) observed later write: %q", v)
	}
}

func TestReadMarkerAbortsLateWriter(t *testing.T) {
	// Figure 5's t2 scenario: t3 (later) reads d0; t2 (earlier) then writes
	// d — t2 must abort.
	m := NewManager()
	installAll(m, map[string]string{"d": "d0"})
	t2 := m.Begin()
	t3 := m.Begin()
	if _, _, err := t3.Read("d"); err != nil {
		t.Fatal(err)
	}
	err := t2.Write("d", []byte("d2"))
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("late write accepted: %v", err)
	}
	if m.Status(t2.ts) != StatusAborted {
		t.Fatal("t2 not marked aborted")
	}
	conflicts, _ := m.Stats()
	if conflicts != 1 {
		t.Fatalf("conflict aborts = %d", conflicts)
	}
}

func TestWriteAfterOwnReadOK(t *testing.T) {
	m := NewManager()
	installAll(m, map[string]string{"x": "base"})
	tx := m.Begin()
	if _, _, err := tx.Read("x"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("x", []byte("new")); err != nil {
		t.Fatalf("write after own read aborted: %v", err)
	}
}

func TestOperationsOnFinishedTxn(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	must(t, tx.Write("x", []byte("v")))
	must(t, tx.Commit())
	if err := tx.Write("y", []byte("v")); !errors.Is(err, ErrNotActive) {
		t.Fatalf("write on finished txn: %v", err)
	}
	if _, _, err := tx.Read("x"); !errors.Is(err, ErrNotActive) {
		t.Fatalf("read on finished txn: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestFinalizeCommitsFinished(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	must(t, t1.Write("k", []byte("v1")))
	must(t, t1.Commit())
	out := m.FinalizeEpoch()
	if len(out.Committed) != 1 || out.Committed[0] != t1.ts {
		t.Fatalf("committed = %v", out.Committed)
	}
	if len(out.Writes) != 1 || out.Writes[0].Key != "k" || string(out.Writes[0].Value) != "v1" {
		t.Fatalf("write set = %+v", out.Writes)
	}
}

func TestFinalizeAbortsUnfinished(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	must(t, t1.Write("k", []byte("v")))
	// No commit: epoch boundary kills it.
	out := m.FinalizeEpoch()
	if len(out.Committed) != 0 {
		t.Fatalf("committed = %v", out.Committed)
	}
	if len(out.Aborted) != 1 || out.Aborted[0] != t1.ts {
		t.Fatalf("aborted = %v", out.Aborted)
	}
	if len(out.Writes) != 0 {
		t.Fatalf("aborted txn's writes leaked: %+v", out.Writes)
	}
}

func TestFinalizeCascadesThroughFinished(t *testing.T) {
	// t1 writes, t2 reads t1's write and finishes, t1 never finishes:
	// both must abort even though t2 requested commit.
	m := NewManager()
	t1 := m.Begin()
	t2 := m.Begin()
	must(t, t1.Write("a", []byte("x")))
	if _, _, err := t2.Read("a"); err != nil {
		t.Fatal(err)
	}
	must(t, t2.Commit())
	out := m.FinalizeEpoch()
	if len(out.Committed) != 0 {
		t.Fatalf("committed = %v (t2 observed an aborted write)", out.Committed)
	}
	if len(out.Aborted) != 2 {
		t.Fatalf("aborted = %v", out.Aborted)
	}
}

func TestFinalizeWriteDedup(t *testing.T) {
	// Multiple committed writers of one key: only the last version goes to
	// the write batch (c1 is skipped, only c2 written — §6.2 example).
	m := NewManager()
	t1 := m.Begin()
	t2 := m.Begin()
	must(t, t1.Write("c", []byte("c1")))
	must(t, t2.Write("c", []byte("c2")))
	must(t, t1.Commit())
	must(t, t2.Commit())
	out := m.FinalizeEpoch()
	if len(out.Committed) != 2 {
		t.Fatalf("committed = %v", out.Committed)
	}
	if len(out.Writes) != 1 || string(out.Writes[0].Value) != "c2" {
		t.Fatalf("write set = %+v", out.Writes)
	}
}

func TestFinalizeTombstone(t *testing.T) {
	m := NewManager()
	installAll(m, map[string]string{"k": "v"})
	t1 := m.Begin()
	must(t, t1.Delete("k"))
	must(t, t1.Commit())
	out := m.FinalizeEpoch()
	if len(out.Writes) != 1 || !out.Writes[0].Tombstone {
		t.Fatalf("write set = %+v", out.Writes)
	}
}

func TestFinalizeResetsChains(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	must(t, t1.Write("k", []byte("v")))
	must(t, t1.Commit())
	m.FinalizeEpoch()
	// Next epoch: the version cache is flushed, reads must re-fetch.
	t2 := m.Begin()
	if _, _, err := t2.Read("k"); !errors.Is(err, ErrNeedFetch) {
		t.Fatalf("read in next epoch: %v", err)
	}
}

func TestAbortAllFateSharing(t *testing.T) {
	m := NewManager()
	t1 := m.Begin()
	t2 := m.Begin()
	must(t, t1.Write("a", []byte("x")))
	must(t, t1.Commit())
	_ = t2
	aborted := m.AbortAll()
	if len(aborted) != 2 {
		t.Fatalf("aborted = %v, want both (fate sharing)", aborted)
	}
}

func TestDeleteThenReadInTxn(t *testing.T) {
	m := NewManager()
	installAll(m, map[string]string{"k": "v"})
	tx := m.Begin()
	must(t, tx.Delete("k"))
	_, found, err := tx.Read("k")
	if err != nil || found {
		t.Fatalf("read after own delete: found=%v err=%v", found, err)
	}
}

func TestVoluntaryAbortRemovesVersions(t *testing.T) {
	m := NewManager()
	installAll(m, map[string]string{"k": "base"})
	t1 := m.Begin()
	must(t, t1.Write("k", []byte("doomed")))
	t1.Abort()
	t2 := m.Begin()
	v, found, err := t2.Read("k")
	if err != nil || !found || string(v) != "base" {
		t.Fatalf("aborted write visible: %q %v %v", v, found, err)
	}
}

func TestCascadeChain(t *testing.T) {
	// t1 -> t2 -> t3 dependency chain: aborting t1 kills all three.
	m := NewManager()
	t1 := m.Begin()
	t2 := m.Begin()
	t3 := m.Begin()
	must(t, t1.Write("a", []byte("1")))
	if _, _, err := t2.Read("a"); err != nil {
		t.Fatal(err)
	}
	must(t, t2.Write("b", []byte("2")))
	if _, _, err := t3.Read("b"); err != nil {
		t.Fatal(err)
	}
	t1.Abort()
	for _, tx := range []*Txn{t1, t2, t3} {
		if m.Status(tx.ts) != StatusAborted {
			t.Fatalf("txn %d not aborted by cascade", tx.ts)
		}
	}
	_, casc := m.Stats()
	if casc < 2 {
		t.Fatalf("cascading aborts = %d", casc)
	}
}

// TestSerializability generates random concurrent histories and verifies
// that the committed transactions are serializable in timestamp order:
// replaying them sequentially reproduces every committed read observation.
func TestSerializability(t *testing.T) {
	type op struct {
		read  bool
		key   string
		value string
	}
	type observation struct {
		ts    Timestamp
		reads map[string]string // key -> observed value ("" = absent)
		write map[string]string
	}
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial)+1, 99))
		m := NewManager()
		base := map[string]string{}
		for i := 0; i < 6; i++ {
			k := fmt.Sprintf("k%d", i)
			base[k] = "base-" + k
			m.InstallBase(k, []byte(base[k]), true)
		}
		// Interleave ops of several concurrent transactions randomly.
		const numTxns = 8
		txns := make([]*Txn, numTxns)
		obs := make([]*observation, numTxns)
		for i := range txns {
			txns[i] = m.Begin()
			obs[i] = &observation{ts: txns[i].ts, reads: map[string]string{}, write: map[string]string{}}
		}
		live := make([]int, numTxns)
		for i := range live {
			live[i] = i
		}
		for step := 0; step < 60 && len(live) > 0; step++ {
			li := rng.IntN(len(live))
			i := live[li]
			tx := txns[i]
			key := fmt.Sprintf("k%d", rng.IntN(6))
			var err error
			if rng.IntN(2) == 0 {
				var v []byte
				var found bool
				v, found, err = tx.Read(key)
				if err == nil {
					if found {
						obs[i].reads[key] = string(v)
					} else {
						obs[i].reads[key] = ""
					}
				}
			} else {
				val := fmt.Sprintf("t%d-s%d", tx.ts, step)
				err = tx.Write(key, []byte(val))
				if err == nil {
					obs[i].write[key] = val
				}
			}
			if errors.Is(err, ErrAborted) {
				live = append(live[:li], live[li+1:]...)
			} else if err != nil && !errors.Is(err, ErrNeedFetch) {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		for _, i := range live {
			txns[i].Commit()
		}
		out := m.FinalizeEpoch()
		committed := map[Timestamp]*observation{}
		for i := range txns {
			for _, ts := range out.Committed {
				if obs[i].ts == ts {
					committed[ts] = obs[i]
				}
			}
		}
		// Sequential replay in timestamp order.
		state := map[string]string{}
		for k, v := range base {
			state[k] = v
		}
		for _, ts := range out.Committed {
			o := committed[ts]
			for k, got := range o.reads {
				// A read observed during execution must match what the
				// sequential replay would produce at this point, UNLESS the
				// transaction later overwrote the key itself (read-your-
				// writes complicates per-key ordering; skip those).
				if _, selfWrote := o.write[k]; selfWrote {
					continue
				}
				if state[k] != got {
					t.Fatalf("trial %d: txn %d read %s=%q, serial replay says %q", trial, ts, k, got, state[k])
				}
			}
			for k, v := range o.write {
				state[k] = v
			}
		}
		// The epoch write set must equal the serial replay's final state
		// restricted to written keys.
		for _, w := range out.Writes {
			if state[w.Key] != string(w.Value) {
				t.Fatalf("trial %d: write set %s=%q, serial state %q", trial, w.Key, w.Value, state[w.Key])
			}
		}
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
