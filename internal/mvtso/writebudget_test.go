package mvtso

import (
	"errors"
	"testing"
)

func budgetManager(perShard int) *Manager {
	m := NewManager()
	// Two shards: keys starting 'a' on shard 0, everything else on shard 1.
	m.SetWriteBudget(2, perShard, func(key string) int {
		if key[0] == 'a' {
			return 0
		}
		return 1
	})
	return m
}

func TestWriteBudgetRefusesAtCap(t *testing.T) {
	m := budgetManager(2)
	tx := m.Begin()
	must(t, tx.Write("a1", []byte("v")))
	must(t, tx.Write("a2", []byte("v")))
	err := tx.Write("a3", []byte("v"))
	if !errors.Is(err, ErrWriteBatchFull) {
		t.Fatalf("third distinct key on a budget of 2: %v, want ErrWriteBatchFull", err)
	}
	// The refusal does not abort in the CCU (the proxy decides that); the
	// other shard's budget is untouched.
	must(t, tx.Write("b1", []byte("v")))
}

func TestWriteBudgetChargesPerKeyNotPerWrite(t *testing.T) {
	m := budgetManager(2)
	t1, t2 := m.Begin(), m.Begin()
	must(t, t1.Write("a1", []byte("v1")))
	must(t, t1.Write("a1", []byte("v2"))) // rewrite: no new charge
	must(t, t2.Write("a1", []byte("v3"))) // same key, other txn: no new charge
	must(t, t2.Write("a2", []byte("v")))  // second and last slot
	if err := t2.Write("a3", []byte("v")); !errors.Is(err, ErrWriteBatchFull) {
		t.Fatalf("budget ignored cross-txn dedup: %v", err)
	}
}

// TestWriteBudgetResetsWithGeneration pins the boundary-race fix: the budget
// resets inside FinalizeEpoch (and AbortAll), under the same lock, so a
// transaction beginning in the new generation gets the new budget — and every
// write the new generation admits is charged against it. The old proxy-side
// reservation map was reset a beat after finalize; writes slipping into that
// window carried no reservation and oversubscribed the next epoch's batch.
func TestWriteBudgetResetsWithGeneration(t *testing.T) {
	m := budgetManager(1)
	tx := m.Begin()
	must(t, tx.Write("a1", []byte("v")))
	must(t, tx.Commit())
	if err := m.Begin().Write("a2", []byte("v")); !errors.Is(err, ErrWriteBatchFull) {
		t.Fatal("budget should be spent before the boundary")
	}
	out := m.FinalizeEpoch()
	if len(out.Writes) != 1 || out.Writes[0].Key != "a1" {
		t.Fatalf("unexpected write set %+v", out.Writes)
	}
	// New generation, fresh budget — atomically with the finalize.
	tx2 := m.Begin()
	must(t, tx2.Write("a2", []byte("v")))
	if err := tx2.Write("a3", []byte("v")); !errors.Is(err, ErrWriteBatchFull) {
		t.Fatalf("new generation budget not enforced: %v", err)
	}

	m.AbortAll()
	must(t, m.Begin().Write("a4", []byte("v")))
}

func TestWriteBudgetChargeSticksAfterAbort(t *testing.T) {
	// An aborted writer's charge stays until the boundary: the slot was
	// promised to this epoch's batch, and releasing it early would let the
	// write set oscillate around the cap.
	m := budgetManager(1)
	tx := m.Begin()
	must(t, tx.Write("a1", []byte("v")))
	tx.Abort()
	if err := m.Begin().Write("a2", []byte("v")); !errors.Is(err, ErrWriteBatchFull) {
		t.Fatalf("abort released the epoch's write charge: %v", err)
	}
	m.FinalizeEpoch()
	must(t, m.Begin().Write("a2", []byte("v")))
}

func TestWriteBudgetUnlimitedByDefault(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	for i := 0; i < 100; i++ {
		must(t, tx.Write(string(rune('a'+i%26))+string(rune('0'+i/26)), []byte("v")))
	}
}
