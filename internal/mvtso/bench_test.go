package mvtso

import (
	"fmt"
	"testing"
)

// BenchmarkEpochThroughput measures CCU ops across full epochs.
func BenchmarkEpochThroughput(b *testing.B) {
	m := NewManager()
	for i := 0; i < 64; i++ {
		m.InstallBase(fmt.Sprintf("k%d", i), []byte("v"), true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := m.Begin()
		key := fmt.Sprintf("k%d", i%64)
		if _, _, err := t.Read(key); err != nil {
			b.Fatal(err)
		}
		if err := t.Write(key, []byte("w")); err != nil {
			t.Abort()
			continue
		}
		t.Commit()
		if i%128 == 127 {
			m.FinalizeEpoch()
			for j := 0; j < 64; j++ {
				m.InstallBase(fmt.Sprintf("k%d", j), []byte("v"), true)
			}
		}
	}
}
