package replica

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"obladi/internal/storage"
	"obladi/internal/wal"
)

// StandbyConfig tunes the standby side.
type StandbyConfig struct {
	// LeaseTimeout is how long the standby tolerates silence (no frame of
	// any kind) before declaring the primary dead. The primary heartbeats
	// every SenderConfig.HeartbeatEvery, so the lease should be several
	// heartbeats wide. Default 750ms — sub-second failover with margin for
	// scheduling jitter.
	LeaseTimeout time.Duration
	// RedialEvery paces reconnection attempts after a dropped stream.
	// Default 50ms.
	RedialEvery time.Duration
	// Decode, when set (the primary's wal config — key and padding), lets
	// the standby open coordinator commit records in flight and expose the
	// replicated committed epoch (observability and tests); nil disables
	// decoding. Replication itself never opens records.
	Decode *wal.Config
}

func (c *StandbyConfig) setDefaults() {
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 750 * time.Millisecond
	}
	if c.RedialEvery <= 0 {
		c.RedialEvery = 50 * time.Millisecond
	}
}

// Standby maintains a warm copy of the primary's per-shard recovery logs by
// replaying its replication stream, watches the primary's lease, and — on
// expiry — promotes: fence the storage backends (so the zombie primary's
// next mutation fails loudly with storage.ErrFenced), top each log copy up
// from the durable tail in storage, and run the ordinary wal recovery over
// the result. Seq alignment makes the top-up exact: after it, each memlog
// equals the store log byte-for-byte wherever both are defined, and may
// additionally hold a suffix of records the primary appended but never got
// to fsync — the same kind of suffix a crash could have preserved, so
// recovery's crash-image reasoning applies unchanged.
type Standby struct {
	primary string
	stores  []storage.Backend
	cfg     StandbyConfig
	decoder *wal.Log // nil unless cfg.Decode set

	mu        sync.Mutex
	logs      []*memlog
	lastSeen  time.Time
	connected bool
	commit    uint64 // highest coordinator commit epoch decoded off the stream

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewStandby starts replicating from the primary's replica listener. stores
// must be the same backends, in the same shard order, that the primary
// serves — promotion tops up and fences shard i's log against stores[i].
func NewStandby(primary string, stores []storage.Backend, cfg StandbyConfig) (*Standby, error) {
	if len(stores) == 0 {
		return nil, errors.New("replica: standby needs the shard stores")
	}
	cfg.setDefaults()
	s := &Standby{
		primary:  primary,
		stores:   stores,
		cfg:      cfg,
		logs:     make([]*memlog, len(stores)),
		lastSeen: time.Now(),
		stop:     make(chan struct{}),
	}
	for i := range s.logs {
		s.logs[i] = newMemlog()
	}
	if cfg.Decode != nil {
		dec, err := wal.New(s.logs[0], *cfg.Decode)
		if err != nil {
			return nil, err
		}
		s.decoder = dec
	}
	s.wg.Add(1)
	go s.run()
	return s, nil
}

// run is the dial/replay loop: it keeps a stream attached while the primary
// lives, resyncing from scratch after any drop (the sender resends history;
// applyAt drops duplicates by seq).
func (s *Standby) run() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		c, err := net.DialTimeout("tcp", s.primary, s.cfg.RedialEvery)
		if err == nil {
			s.serve(c)
		}
		select {
		case <-s.stop:
			return
		case <-time.After(s.cfg.RedialEvery):
		}
	}
}

// serve replays one connection's stream until it drops.
func (s *Standby) serve(c net.Conn) {
	defer c.Close()
	// Unblock the read loop when the standby stops or promotes. Note the
	// dial itself proves nothing about the primary (the listener may
	// outlive the proxy); only frames refresh the lease.
	connDone := make(chan struct{})
	defer close(connDone)
	go func() {
		select {
		case <-s.stop:
			c.Close()
		case <-connDone:
		}
	}()
	hello, err := readFrame(c)
	if err != nil {
		return
	}
	shards, err := checkHello(hello)
	if err != nil || shards != len(s.logs) {
		log.Printf("replica: standby rejecting primary %s: %v (shards %d, want %d)", s.primary, err, shards, len(s.logs))
		return
	}
	s.setConnected(true)
	defer s.setConnected(false)
	s.refreshLease()
	var received uint64 // record frames on this connection == sender offset
	for {
		f, err := readFrame(c)
		if err != nil {
			return
		}
		s.refreshLease()
		switch f.kind {
		case frameRecord:
			if int(f.shard) >= len(s.logs) {
				log.Printf("replica: record for shard %d of %d, dropping stream", f.shard, len(s.logs))
				return
			}
			if _, err := s.logs[f.shard].applyAt(f.seq, f.rec); err != nil {
				// A gap means we missed frames somehow; drop and resync.
				log.Printf("replica: %v, resyncing", err)
				return
			}
			received++
			if err := writeFrame(c, frame{kind: frameAck, seq: received}); err != nil {
				return
			}
			if f.shard == 0 && s.decoder != nil {
				if epoch, ok, err := s.decoder.DecodeCommitEpoch(f.rec); err == nil && ok {
					s.mu.Lock()
					if epoch > s.commit {
						s.commit = epoch
					}
					s.mu.Unlock()
				}
			}
		case frameSyncpoint:
			if err := writeFrame(c, frame{kind: frameAck, seq: received}); err != nil {
				return
			}
		case frameHeartbeat:
			// Lease already refreshed above.
		}
	}
}

func (s *Standby) setConnected(v bool) {
	s.mu.Lock()
	s.connected = v
	s.mu.Unlock()
}

func (s *Standby) refreshLease() {
	s.mu.Lock()
	s.lastSeen = time.Now()
	s.mu.Unlock()
}

// PrimaryDown reports whether the lease has expired: no frame for longer
// than LeaseTimeout. The clock starts at NewStandby, so a primary that was
// already dead (or never reachable) expires one lease after startup and the
// standby can still promote — the storage top-up recovers everything
// replication never delivered.
func (s *Standby) PrimaryDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Since(s.lastSeen) > s.cfg.LeaseTimeout
}

// WaitPrimaryDown blocks until the lease expires or ctx is done.
func (s *Standby) WaitPrimaryDown(ctx context.Context) error {
	poll := s.cfg.LeaseTimeout / 16
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		if s.PrimaryDown() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// StandbyStats is an observability snapshot.
type StandbyStats struct {
	Connected   bool
	CommitEpoch uint64    // highest replicated coordinator commit (needs Key)
	LastFrame   time.Time // lease clock
	Seqs        []uint64  // per-shard highest replicated seq
}

// Stats snapshots the standby.
func (s *Standby) Stats() StandbyStats {
	s.mu.Lock()
	st := StandbyStats{Connected: s.connected, CommitEpoch: s.commit, LastFrame: s.lastSeen}
	s.mu.Unlock()
	for _, l := range s.logs {
		seq, _ := l.LastSeq()
		st.Seqs = append(st.Seqs, seq)
	}
	return st
}

// PromoteResult carries what a new primary needs: the fenced store views to
// run against and the per-shard recovery states (coordinator first).
// Recoveries is nil when the logs hold no committed state — the dead primary
// never completed a first boot — in which case the caller should cold-start
// with core.NewSharded on Stores instead.
type PromoteResult struct {
	Stores     []storage.Backend
	Recoveries []*wal.Recovery
}

// Promote turns the standby's warm state into recovery state for a new
// primary, in strict order: (1) stop replicating, (2) fence every store —
// from this point the zombie primary's mutations fail with ErrFenced, and
// in particular nothing can extend the durable log tails, (3) top each warm
// log up from its store's tail so it covers everything the dead primary made
// durable, (4) run wal recovery over the warm logs. base supplies the log
// crypto and padding config (Shard/Shards are set per shard here).
func (s *Standby) Promote(base wal.Config) (*PromoteResult, error) {
	s.Stop()
	res := &PromoteResult{Stores: make([]storage.Backend, len(s.stores))}
	for i, st := range s.stores {
		view := st
		if f, ok := st.(storage.Fenceable); ok {
			v, _, err := f.AcquireFence()
			if err != nil {
				return nil, fmt.Errorf("replica: fencing shard %d: %w", i, err)
			}
			view = v
		}
		res.Stores[i] = view
	}
	for i, view := range res.Stores {
		last, err := s.logs[i].LastSeq()
		if err != nil {
			return nil, err
		}
		tail, err := view.Scan(last + 1)
		if err != nil {
			return nil, fmt.Errorf("replica: shard %d tail scan: %w", i, err)
		}
		for j, rec := range tail {
			if _, err := s.logs[i].applyAt(last+1+uint64(j), rec); err != nil {
				return nil, err
			}
		}
	}
	recs := make([]*wal.Recovery, len(s.logs))
	cfg := base
	cfg.Shard, cfg.Shards = 0, len(s.logs)
	coordLog, err := wal.New(s.logs[0], cfg)
	if err != nil {
		return nil, err
	}
	rec, err := coordLog.Recover()
	switch {
	case errors.Is(err, wal.ErrNoCheckpoint):
		return res, nil // never booted: caller cold-starts on res.Stores
	case err != nil:
		return nil, fmt.Errorf("replica: recovering coordinator: %w", err)
	case !rec.HasCommit:
		return res, nil // first boot died pre-commit: cold-start reinits
	}
	recs[0] = rec
	for i := 1; i < len(s.logs); i++ {
		cfg := base
		cfg.Shard, cfg.Shards = i, len(s.logs)
		l, err := wal.New(s.logs[i], cfg)
		if err != nil {
			return nil, err
		}
		if recs[i], err = l.RecoverWithFloor(rec.CommittedEpoch); err != nil {
			return nil, fmt.Errorf("replica: recovering shard %d: %w", i, err)
		}
	}
	res.Recoveries = recs
	return res, nil
}

// Stop ends replication without promoting (idempotent; Promote calls it).
func (s *Standby) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}
