package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
	"obladi/internal/wal"
)

// RunFailoverConformance pins the proxy-failover contract: framing integrity
// (torn tails and corruption detected, never half-applied), lease semantics
// (heartbeats hold it, silence expires it), promotion fencing (the zombie
// primary's next append fails loudly), standby replay equivalence with cold
// recovery, and zero acknowledged-commit loss across a handoff in both ack
// modes. It lives here so any future transport or protocol change re-proves
// the whole contract under -race with one call.
func RunFailoverConformance(t *testing.T) {
	checks := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"framing/roundtrip", checkFramingRoundTrip},
		{"framing/torn-tail", checkFramingTornTail},
		{"framing/corruption", checkFramingCorruption},
		{"framing/hello", checkHelloValidation},
		{"stream/dedup-by-seq", checkDedupBySeq},
		{"stream/resync-replays-history", checkResyncReplaysHistory},
		{"lease/heartbeat-holds", checkLeaseHeartbeatHolds},
		{"lease/expires-on-silence", checkLeaseExpires},
		{"promotion/fences-zombie", checkPromotionFencesZombie},
		{"promotion/replay-equivalence", checkReplayEquivalence},
		{"handoff/zero-acked-loss-local", func(t *testing.T) { checkZeroAckedLoss(t, false) }},
		{"handoff/zero-acked-loss-replica-acked", func(t *testing.T) { checkZeroAckedLoss(t, true) }},
	}
	for _, c := range checks {
		t.Run(c.name, c.run)
	}
}

// --- framing ---

func sampleFrames() []frame {
	big := bytes.Repeat([]byte{0xa5}, 4096)
	return []frame{
		helloFrame(3),
		{kind: frameRecord, shard: 2, seq: 7, rec: []byte("sealed-record")},
		{kind: frameRecord, shard: 0, seq: 1, rec: big},
		{kind: frameHeartbeat},
		{kind: frameSyncpoint, seq: 42},
		{kind: frameAck, seq: 41},
	}
}

func checkFramingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := sampleFrames()
	for _, f := range want {
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		g, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if g.kind != w.kind || g.shard != w.shard || g.seq != w.seq || !bytes.Equal(g.rec, w.rec) {
			t.Fatalf("frame %d: got %+v want %+v", i, g, w)
		}
	}
	if _, err := readFrame(&buf); err != io.EOF {
		t.Fatalf("clean tail: got %v, want io.EOF", err)
	}
}

// checkFramingTornTail truncates a two-frame stream at every byte offset: a
// cut between frames must read as a clean io.EOF after the intact prefix, a
// cut inside a frame must surface ErrTornFrame — never a partial frame.
func checkFramingTornTail(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{kind: frameRecord, shard: 1, seq: 9, rec: []byte("first")}); err != nil {
		t.Fatal(err)
	}
	first := buf.Len()
	if err := writeFrame(&buf, frame{kind: frameRecord, shard: 1, seq: 10, rec: []byte("second")}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	bounds := []int{0, first, len(full)} // frame boundaries in the stream
	for cut := 0; cut < len(full); cut++ {
		r := bytes.NewReader(full[:cut])
		whole := 0 // frames fully contained before the cut
		for whole+1 < len(bounds) && bounds[whole+1] <= cut {
			whole++
		}
		for i := 0; i < whole; i++ {
			if _, err := readFrame(r); err != nil {
				t.Fatalf("cut %d: intact frame %d: %v", cut, i, err)
			}
		}
		_, err := readFrame(r)
		if cut == bounds[whole] { // cut exactly between frames
			if err != io.EOF {
				t.Fatalf("cut %d: got %v, want io.EOF", cut, err)
			}
		} else if !errors.Is(err, ErrTornFrame) {
			t.Fatalf("cut %d: got %v, want ErrTornFrame", cut, err)
		}
	}
}

// checkFramingCorruption flips every byte of an encoded frame in turn; each
// single-byte flip must be rejected (crc mismatch, implausible length, or a
// torn read from a garbled length prefix) — never decoded as valid.
func checkFramingCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frame{kind: frameRecord, shard: 3, seq: 12, rec: []byte("payload-bytes")}); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		_, err := readFrame(bytes.NewReader(bad))
		if !errors.Is(err, ErrCorruptFrame) && !errors.Is(err, ErrTornFrame) {
			t.Fatalf("flip at %d: got %v, want corrupt/torn", i, err)
		}
	}
}

func checkHelloValidation(t *testing.T) {
	if n, err := checkHello(helloFrame(4)); err != nil || n != 4 {
		t.Fatalf("good hello: %d, %v", n, err)
	}
	bads := []frame{
		{kind: frameRecord, shard: 4, seq: frameVersion, rec: []byte(frameMagic)},
		{kind: frameHello, shard: 4, seq: frameVersion + 1, rec: []byte(frameMagic)},
		{kind: frameHello, shard: 4, seq: frameVersion, rec: []byte("NOPE")},
		{kind: frameHello, shard: 0, seq: frameVersion, rec: []byte(frameMagic)},
	}
	for i, f := range bads {
		if _, err := checkHello(f); !errors.Is(err, ErrBadHello) {
			t.Fatalf("bad hello %d: got %v, want ErrBadHello", i, err)
		}
	}
}

// --- stream semantics ---

// checkDedupBySeq pins the memlog's at-most-once apply: a resync that
// replays history must not double-apply, and a gap must be refused.
func checkDedupBySeq(t *testing.T) {
	m := newMemlog()
	for seq := uint64(1); seq <= 3; seq++ {
		ok, err := m.applyAt(seq, []byte{byte(seq)})
		if err != nil || !ok {
			t.Fatalf("seq %d: applied=%v err=%v", seq, ok, err)
		}
	}
	// Duplicate delivery (resync from offset 0) is dropped, not re-applied.
	if ok, err := m.applyAt(2, []byte{0xff}); err != nil || ok {
		t.Fatalf("duplicate: applied=%v err=%v", ok, err)
	}
	// A gap is a protocol violation.
	if _, err := m.applyAt(6, []byte{6}); err == nil {
		t.Fatal("gap accepted")
	}
	recs, err := m.Scan(0)
	if err != nil || len(recs) != 3 {
		t.Fatalf("scan: %d recs, %v", len(recs), err)
	}
	for i, r := range recs {
		if !bytes.Equal(r, []byte{byte(i + 1)}) {
			t.Fatalf("rec %d mutated by duplicate: %x", i, r)
		}
	}
}

// checkResyncReplaysHistory speaks the protocol by hand: a standby that
// reconnects must receive the sender's full history again from offset zero,
// in identical order — the resend plus seq-dedup is what makes a lossy
// reconnect correct without any per-connection cursor state.
func checkResyncReplaysHistory(t *testing.T) {
	s, err := NewSender("127.0.0.1:0", SenderConfig{Shards: 2, HeartbeatEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Prime(0, [][]byte{[]byte("a1"), []byte("a2")}, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Prime(1, [][]byte{[]byte("b1")}, 1); err != nil {
		t.Fatal(err)
	}
	s.Mirror(0, 3, []byte("a3"))

	readStream := func(n int) []frame {
		c, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		hello, err := readFrame(c)
		if err != nil {
			t.Fatal(err)
		}
		if shards, err := checkHello(hello); err != nil || shards != 2 {
			t.Fatalf("hello: shards=%d err=%v", shards, err)
		}
		var got []frame
		for len(got) < n {
			f, err := readFrame(c)
			if err != nil {
				t.Fatal(err)
			}
			if f.kind != frameRecord {
				continue
			}
			f.rec = append([]byte(nil), f.rec...)
			got = append(got, f)
		}
		return got
	}

	first := readStream(4) // connection drops after a partial read elsewhere
	again := readStream(4)
	for i := range first {
		a, b := first[i], again[i]
		if a.shard != b.shard || a.seq != b.seq || !bytes.Equal(a.rec, b.rec) {
			t.Fatalf("resync diverged at %d: %+v vs %+v", i, a, b)
		}
	}
	// The stream preserves store order per shard.
	next := map[uint32]uint64{0: 1, 1: 1}
	for _, f := range first {
		if f.seq != next[f.shard] {
			t.Fatalf("shard %d: seq %d, want %d", f.shard, f.seq, next[f.shard])
		}
		next[f.shard]++
	}
}

// --- lease ---

func checkLeaseHeartbeatHolds(t *testing.T) {
	s, err := NewSender("127.0.0.1:0", SenderConfig{Shards: 1, HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	stores := []storage.Backend{storage.NewMemBackend(8)}
	sb, err := NewStandby(s.Addr(), stores, StandbyConfig{LeaseTimeout: 250 * time.Millisecond, RedialEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Stop()
	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		if sb.PrimaryDown() {
			t.Fatal("lease expired while the primary was heartbeating")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sb.Stats().Connected {
		t.Fatal("standby never attached")
	}
}

func checkLeaseExpires(t *testing.T) {
	s, err := NewSender("127.0.0.1:0", SenderConfig{Shards: 1, HeartbeatEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	stores := []storage.Backend{storage.NewMemBackend(8)}
	sb, err := NewStandby(s.Addr(), stores, StandbyConfig{LeaseTimeout: 100 * time.Millisecond, RedialEvery: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Stop()
	waitAttached(t, sb)
	if sb.PrimaryDown() {
		t.Fatal("lease expired under live heartbeats")
	}
	s.Close() // primary dies: stream and heartbeats stop
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := sb.WaitPrimaryDown(ctx); err != nil {
		t.Fatalf("lease never expired: %v", err)
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("failover detection took %v", waited)
	}
}

// --- promotion over a live core proxy ---

// conformanceConfig mirrors core's test configuration: a small ORAM so
// epochs are cheap, deterministic seeds, auto-scheduled batches.
func conformanceConfig(seed uint64) core.Config {
	return core.Config{
		Params: ringoram.Params{
			NumBlocks: 128,
			Z:         4,
			S:         6,
			A:         4,
			KeySize:   24,
			ValueSize: 64,
			Seed:      seed,
		},
		Key:            cryptoutil.KeyFromSeed([]byte("replica-conformance")),
		ReadBatches:    2,
		ReadBatchSize:  8,
		WriteBatchSize: 8,
		BatchInterval:  time.Millisecond,
	}
}

// haPair is an in-process primary/standby deployment over shared in-memory
// backends — the same topology the binaries build, minus the client wire.
type haPair struct {
	raw     []storage.Backend // shared stores (what a real deployment's network reaches)
	views   []storage.Backend // the primary's fenced views
	cfg     core.Config
	sender  *Sender
	primary *core.Proxy
	standby *Standby
}

func newHAPair(t *testing.T, shards int, acked bool) *haPair {
	t.Helper()
	cfg := conformanceConfig(7)
	raw := make([]storage.Backend, shards)
	views := make([]storage.Backend, shards)
	for i := range raw {
		raw[i] = storage.NewMemBackend(cfg.Params.Geometry().NumBuckets)
		// The primary fences at startup (as obladi.Open does when
		// replicating): holding a generation is what lets promotion
		// revoke it — a raw, token-0 handle could never be fenced out.
		view, _, err := raw[i].(storage.Fenceable).AcquireFence()
		if err != nil {
			t.Fatal(err)
		}
		views[i] = view
	}
	sender, err := NewSender("127.0.0.1:0", SenderConfig{
		Shards:         shards,
		Acked:          acked,
		HeartbeatEvery: 5 * time.Millisecond,
		BarrierTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Replicator = sender
	primary, err := core.NewSharded(views, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.WALConfigFor(cfg, 0, shards)
	if err != nil {
		t.Fatal(err)
	}
	standby, err := NewStandby(sender.Addr(), raw, StandbyConfig{
		LeaseTimeout: 150 * time.Millisecond,
		RedialEvery:  5 * time.Millisecond,
		Decode:       &base,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &haPair{raw: raw, views: views, cfg: cfg, sender: sender, primary: primary, standby: standby}
	t.Cleanup(func() {
		h.standby.Stop()
		h.sender.Close()
		h.primary.Close()
	})
	return h
}

func waitAttached(t *testing.T, sb *Standby) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !sb.Stats().Connected {
		if time.Now().After(deadline) {
			t.Fatal("standby never attached")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// commit writes key=value in one transaction and returns Commit's verdict.
func commit(p *core.Proxy, key string, value []byte) error {
	tx := p.Begin()
	if err := tx.Write(key, value); err != nil {
		return err
	}
	return tx.Commit()
}

// readKey reads key in its own transaction, retrying ErrEpochFull (which
// admission-control sheds also match): a transaction that begins near its
// epoch's end can miss the read batches — ordinary client-visible
// backpressure, not a correctness signal. The sleep matters: sheds fire in
// the window between an epoch's last read batch and its boundary, so an
// instant retry lands in the same window and sheds again.
func readKey(t *testing.T, p *core.Proxy, key string) ([]byte, bool) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		tx := p.Begin()
		v, found, err := tx.Read(key)
		tx.Abort()
		if err == nil {
			return v, found
		}
		if !errors.Is(err, core.ErrEpochFull) || attempt >= 50 {
			t.Fatalf("read %s: %v", key, err)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// kill simulates the primary host dying: the replication stream and
// heartbeats stop (sender gone), and the proxy is abandoned un-shut-down —
// whatever it was doing mid-epoch is lost exactly as a SIGKILL would lose it.
func (h *haPair) kill() {
	h.sender.Close()
}

// promote waits out the lease and promotes the standby, returning the
// recovered state for the new primary.
func (h *haPair) promote(t *testing.T) *PromoteResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.standby.WaitPrimaryDown(ctx); err != nil {
		t.Fatalf("lease never expired: %v", err)
	}
	base, err := core.WALConfigFor(h.cfg, 0, len(h.raw))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.standby.Promote(base)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	return res
}

// newPrimaryConfig strips the dead sender off the config for the promoted
// proxy (a real deployment would install its own replica listener here).
func (h *haPair) newPrimaryConfig() core.Config {
	cfg := h.cfg
	cfg.Replicator = nil
	return cfg
}

func checkPromotionFencesZombie(t *testing.T) {
	h := newHAPair(t, 2, false)
	waitAttached(t, h.standby)
	for i := 0; i < 4; i++ {
		if err := commit(h.primary, fmt.Sprintf("key-%d", i), []byte("v")); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	h.kill()
	res := h.promote(t)
	if res.Recoveries == nil {
		t.Fatal("promotion found no committed state")
	}
	// The zombie primary's handles predate the promotion fence: every
	// mutation — in particular extending the recovery log — must now fail.
	for i, v := range h.views {
		if _, err := v.Append([]byte("zombie append")); !errors.Is(err, storage.ErrFenced) {
			t.Fatalf("shard %d: zombie append: got %v, want ErrFenced", i, err)
		}
	}
	// And a transaction on the zombie proxy cannot be acknowledged: its
	// next boundary hits the fence and fails the commit loudly.
	tx := h.primary.Begin()
	err := tx.Write("zombie-key", []byte("z"))
	if err == nil {
		err = tx.Commit()
	}
	if err == nil {
		t.Fatal("zombie proxy acknowledged a commit after promotion")
	}
	// The new primary serves the full committed state.
	p2, err := core.NewShardedFromRecoveries(res.Stores, h.newPrimaryConfig(), res.Recoveries)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for i := 0; i < 4; i++ {
		v, found := readKey(t, p2, fmt.Sprintf("key-%d", i))
		if !found || !bytes.Equal(v, []byte("v")) {
			t.Fatalf("key-%d after failover: v=%q found=%v", i, v, found)
		}
	}
}

// checkReplayEquivalence proves the standby's continuously-replayed state is
// the state cold recovery computes: after promotion each warm log equals the
// durable store log byte for byte, and the recovery summaries match what a
// from-scratch wal.Recover over the store reads back.
func checkReplayEquivalence(t *testing.T) {
	h := newHAPair(t, 2, false)
	waitAttached(t, h.standby)
	for i := 0; i < 6; i++ {
		if err := commit(h.primary, fmt.Sprintf("eq-%d", i), []byte{byte(i)}); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	h.kill()
	res := h.promote(t)
	if res.Recoveries == nil {
		t.Fatal("promotion found no committed state")
	}
	for i := range h.raw {
		warm, err := h.standby.logs[i].Scan(0)
		if err != nil {
			t.Fatal(err)
		}
		durable, err := res.Stores[i].Scan(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(warm) != len(durable) {
			t.Fatalf("shard %d: warm log has %d records, store has %d", i, len(warm), len(durable))
		}
		for j := range warm {
			if !bytes.Equal(warm[j], durable[j]) {
				t.Fatalf("shard %d: record %d differs between warm log and store", i, j)
			}
		}
	}
	// Cold recovery straight off the durable logs must agree with the
	// promotion's recovery summaries.
	for i := range h.raw {
		cfg, err := core.WALConfigFor(h.cfg, i, len(h.raw))
		if err != nil {
			t.Fatal(err)
		}
		l, err := wal.New(res.Stores[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		var cold *wal.Recovery
		if i == 0 {
			cold, err = l.Recover()
		} else {
			cold, err = l.RecoverWithFloor(res.Recoveries[0].CommittedEpoch)
		}
		if err != nil {
			t.Fatalf("cold recovery shard %d: %v", i, err)
		}
		warm := res.Recoveries[i]
		if cold.HasCommit != warm.HasCommit || cold.CommittedEpoch != warm.CommittedEpoch {
			t.Fatalf("shard %d: cold recovery (commit=%v epoch=%d) != standby replay (commit=%v epoch=%d)",
				i, cold.HasCommit, cold.CommittedEpoch, warm.HasCommit, warm.CommittedEpoch)
		}
	}
	// The standby decoded the committed epoch off the stream as it flowed.
	if got, want := h.standby.Stats().CommitEpoch, res.Recoveries[0].CommittedEpoch; got == 0 || got > want {
		t.Fatalf("streamed commit epoch %d, recovered %d", got, want)
	}
}

// checkZeroAckedLoss is the contract the whole subsystem exists for: every
// transaction whose Commit returned nil on the primary is present after
// failover — in local-durable mode because promotion tops the warm logs up
// from the fsynced tail, in replica-acked mode additionally because the ack
// was gated on standby receipt.
func checkZeroAckedLoss(t *testing.T, acked bool) {
	h := newHAPair(t, 2, acked)
	waitAttached(t, h.standby)
	want := map[string][]byte{}
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("acked-%02d", i)
		val := []byte(fmt.Sprintf("value-%02d", i))
		if err := commit(h.primary, key, val); err != nil {
			t.Fatalf("commit %s: %v", key, err)
		}
		want[key] = val // Commit acked: must survive the handoff
	}
	// A multi-key read-modify-write transaction, acked as a unit.
	for attempt := 0; ; attempt++ {
		tx := h.primary.Begin()
		_, _, err := tx.Read("acked-00")
		if err == nil {
			err = tx.Write("acked-00", []byte("rewritten"))
		}
		if err == nil {
			err = tx.Write("extra", []byte("pair"))
		}
		if err == nil {
			err = tx.Commit()
		}
		if err == nil {
			break
		}
		tx.Abort()
		if !errors.Is(err, core.ErrEpochFull) || attempt >= 50 {
			t.Fatalf("multi-key commit: %v", err)
		}
		time.Sleep(500 * time.Microsecond)
	}
	want["acked-00"], want["extra"] = []byte("rewritten"), []byte("pair")

	if acked {
		// Every barrier had the standby attached, so none may have degraded.
		if st := h.sender.Stats(); st.BarriersDegraded != 0 {
			t.Fatalf("%d barriers degraded with a live standby", st.BarriersDegraded)
		}
	}
	h.kill()
	res := h.promote(t)
	if res.Recoveries == nil {
		t.Fatal("promotion found no committed state")
	}
	p2, err := core.NewShardedFromRecoveries(res.Stores, h.newPrimaryConfig(), res.Recoveries)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for key, val := range want {
		v, found := readKey(t, p2, key)
		if !found {
			t.Fatalf("acknowledged commit lost across failover: %s", key)
		}
		if !bytes.Equal(v, val) {
			t.Fatalf("%s after failover: got %q want %q", key, v, val)
		}
	}
	// And the new primary is live: it accepts and commits new transactions.
	if err := commit(p2, "post-failover", []byte("alive")); err != nil {
		t.Fatalf("commit on promoted primary: %v", err)
	}
}
