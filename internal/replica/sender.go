package replica

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"
)

// SenderConfig tunes the primary side of the replication stream.
type SenderConfig struct {
	// Shards is the proxy's shard count, announced in the hello frame and
	// checked by the standby (a mis-paired standby fails loudly). Required.
	Shards int
	// Acked gates commit acknowledgements on standby receipt: Barrier waits
	// until the attached standby has acked the whole stream. False (the
	// default) is local-durable mode — Barrier returns immediately and the
	// stream is best-effort warmth for faster failover.
	Acked bool
	// BarrierTimeout bounds how long an acked-mode Barrier waits before
	// degrading to local-durable and dropping the lagging standby.
	// Default 2s.
	BarrierTimeout time.Duration
	// HeartbeatEvery paces idle-stream heartbeats that keep the standby's
	// lease fresh. Default 100ms.
	HeartbeatEvery time.Duration
}

func (c *SenderConfig) setDefaults() error {
	if c.Shards <= 0 {
		return errors.New("replica: SenderConfig.Shards required")
	}
	if c.BarrierTimeout <= 0 {
		c.BarrierTimeout = 2 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 100 * time.Millisecond
	}
	return nil
}

// entry is one mirrored record in the sender's global stream. The stream
// interleaves shards in mirror order; per shard it preserves store order, so
// any prefix of the stream gives the standby a per-shard log prefix — the
// same shape a crash leaves, which is exactly what wal recovery handles.
type entry struct {
	shard int
	seq   uint64
	rec   []byte
}

// Sender is the primary-side replication endpoint. It implements the
// structural core.Replicator contract (Prime/Mirror/Barrier) and serves at
// most one attached standby, streaming the full record history from offset
// zero on every (re)attach; the standby deduplicates by store seq, so a
// resync is wasteful but never wrong. History is retained for the process
// lifetime — the proxy never truncates its recovery log (checkpoint deltas
// keep it short-lived state, and full history is what makes late attach and
// lossy reconnect trivially correct).
type Sender struct {
	cfg SenderConfig
	ln  net.Listener

	mu       sync.Mutex
	cond     *sync.Cond
	entries  []entry
	conn     *senderConn
	closed   bool
	degraded uint64 // barriers that fell back to local-durable
	degLog   bool   // degrade already logged since last healthy barrier

	wg sync.WaitGroup
}

// senderConn is one attached standby connection.
type senderConn struct {
	c     net.Conn
	wmu   sync.Mutex
	acked uint64 // guarded by Sender.mu: global stream offset acked
	gone  chan struct{}
	once  sync.Once
}

func (sc *senderConn) close() {
	sc.once.Do(func() {
		close(sc.gone)
		sc.c.Close()
	})
}

func (sc *senderConn) write(f frame) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	return writeFrame(sc.c, f)
}

// NewSender listens for standby attachments on addr (e.g. ":7042" or
// "127.0.0.1:0").
func NewSender(addr string, cfg SenderConfig) (*Sender, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Sender{cfg: cfg, ln: ln}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Sender) Addr() string { return s.ln.Addr().String() }

func (s *Sender) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		sc := &senderConn{c: c, gone: make(chan struct{})}
		if err := sc.write(helloFrame(s.cfg.Shards)); err != nil {
			sc.close()
			continue
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			sc.close()
			return
		}
		old := s.conn
		s.conn = sc
		s.mu.Unlock()
		if old != nil {
			// Newest attach wins: a standby that redialed after a network
			// blip replaces its own stale connection.
			old.close()
		}
		s.wg.Add(3)
		go s.streamLoop(sc)
		go s.heartbeatLoop(sc)
		go s.ackLoop(sc)
	}
}

// streamLoop pushes the global stream to one standby from offset zero.
func (s *Sender) streamLoop(sc *senderConn) {
	defer s.wg.Done()
	cursor := 0
	for {
		s.mu.Lock()
		for !s.closed && s.conn == sc && cursor == len(s.entries) {
			s.cond.Wait()
		}
		if s.closed || s.conn != sc {
			s.mu.Unlock()
			return
		}
		batch := s.entries[cursor:len(s.entries):len(s.entries)]
		cursor = len(s.entries)
		s.mu.Unlock()
		for _, e := range batch {
			if err := sc.write(frame{kind: frameRecord, shard: uint32(e.shard), seq: e.seq, rec: e.rec}); err != nil {
				s.dropConn(sc)
				return
			}
		}
	}
}

// heartbeatLoop keeps the standby's lease fresh while the stream is idle.
func (s *Sender) heartbeatLoop(sc *senderConn) {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-sc.gone:
			return
		case <-t.C:
			if err := sc.write(frame{kind: frameHeartbeat}); err != nil {
				s.dropConn(sc)
				return
			}
		}
	}
}

// ackLoop consumes the standby's cumulative acks.
func (s *Sender) ackLoop(sc *senderConn) {
	defer s.wg.Done()
	for {
		f, err := readFrame(sc.c)
		if err != nil {
			s.dropConn(sc)
			return
		}
		if f.kind != frameAck {
			continue
		}
		s.mu.Lock()
		if f.seq > sc.acked {
			sc.acked = f.seq
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}

func (s *Sender) dropConn(sc *senderConn) {
	s.mu.Lock()
	if s.conn == sc {
		s.conn = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	sc.close()
}

// Prime seeds shard's full existing history (core.Replicator contract:
// called once per shard before any traffic flows through the tees).
func (s *Sender) Prime(shard int, recs [][]byte, firstSeq uint64) error {
	if shard < 0 || shard >= s.cfg.Shards {
		return fmt.Errorf("replica: prime for shard %d of %d", shard, s.cfg.Shards)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, rec := range recs {
		s.entries = append(s.entries, entry{shard: shard, seq: firstSeq + uint64(i), rec: append([]byte(nil), rec...)})
	}
	s.cond.Broadcast()
	return nil
}

// Mirror buffers one appended record for streaming (core.Replicator
// contract: called in store order per shard, must not block on the network).
func (s *Sender) Mirror(shard int, seq uint64, rec []byte) {
	s.mu.Lock()
	s.entries = append(s.entries, entry{shard: shard, seq: seq, rec: append([]byte(nil), rec...)})
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Barrier implements the core.Replicator ack gate. In local-durable mode it
// is a no-op. In replica-acked mode it waits (bounded) until the attached
// standby has acked every record mirrored so far; with no standby, or one
// that cannot keep up within BarrierTimeout, it degrades to local-durable —
// loudly, and dropping the sick standby so it resyncs — rather than failing,
// because the epoch it gates is already durably committed locally and an
// error would surface to clients as an abort of committed transactions.
func (s *Sender) Barrier() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.cfg.Acked || s.closed {
		return nil
	}
	target := uint64(len(s.entries))
	sc := s.conn
	if sc == nil {
		s.noteDegradedLocked("no standby attached")
		return nil
	}
	if sc.acked >= target {
		s.degLog = false
		return nil
	}
	// Prod an immediate ack without holding the lock across a network write.
	go sc.write(frame{kind: frameSyncpoint, seq: target})
	expired := false
	timer := time.AfterFunc(s.cfg.BarrierTimeout, func() {
		s.mu.Lock()
		expired = true
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	for !expired && !s.closed && s.conn == sc && sc.acked < target {
		s.cond.Wait()
	}
	if sc.acked >= target {
		s.degLog = false
		return nil
	}
	s.noteDegradedLocked("standby ack timeout")
	if s.conn == sc {
		s.conn = nil
		sc.close()
	}
	return nil
}

func (s *Sender) noteDegradedLocked(reason string) {
	s.degraded++
	if !s.degLog {
		log.Printf("replica: barrier degraded to local-durable: %s", reason)
		s.degLog = true
	}
}

// SenderStats is an observability snapshot.
type SenderStats struct {
	Attached         bool
	StreamLen        uint64 // records in the global stream
	Acked            uint64 // stream offset acked by the attached standby
	BarriersDegraded uint64
}

// Stats snapshots the sender.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SenderStats{StreamLen: uint64(len(s.entries)), BarriersDegraded: s.degraded}
	if s.conn != nil {
		st.Attached = true
		st.Acked = s.conn.acked
	}
	return st
}

// Close shuts the sender down and detaches any standby.
func (s *Sender) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	sc := s.conn
	s.conn = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.ln.Close()
	if sc != nil {
		sc.close()
	}
	s.wg.Wait()
	return nil
}
