package replica

import "testing"

func TestFailoverConformance(t *testing.T) {
	RunFailoverConformance(t)
}
