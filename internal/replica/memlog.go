package replica

import (
	"fmt"
	"sync"
)

// memlog is the standby's warm in-memory copy of one shard's recovery log.
// It implements storage.LogStore so the ordinary wal recovery runs over it
// unchanged at promotion. The load-bearing invariant is seq alignment:
// record seq i here holds the same bytes as seq i in the primary's store
// log. It holds because the primary mirrors each record with the seq its
// store assigned, applyAt refuses gaps (a lossy reconnect resyncs from
// offset 0 and duplicates are dropped by seq), and neither side truncates.
type memlog struct {
	mu   sync.Mutex
	recs [][]byte
	base uint64 // seq of recs[0]; store logs start at 1
}

func newMemlog() *memlog { return &memlog{base: 1} }

// applyAt installs the record carried by a stream frame at its store seq.
// Duplicates (from a resync replaying history) report applied=false; a gap
// is a protocol violation — the caller drops the connection and resyncs.
func (m *memlog) applyAt(seq uint64, rec []byte) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := m.base + uint64(len(m.recs))
	switch {
	case seq < next:
		return false, nil
	case seq > next:
		return false, fmt.Errorf("replica: log gap: have through seq %d, got seq %d", next-1, seq)
	}
	m.recs = append(m.recs, append([]byte(nil), rec...))
	return true, nil
}

// Append implements storage.LogStore.
func (m *memlog) Append(record []byte) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, record)
	return m.base + uint64(len(m.recs)) - 1, nil
}

// Scan implements storage.LogStore.
func (m *memlog) Scan(from uint64) ([][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if from < m.base {
		from = m.base
	}
	idx := int(from - m.base)
	if idx >= len(m.recs) {
		return nil, nil
	}
	out := make([][]byte, len(m.recs)-idx)
	copy(out, m.recs[idx:])
	return out, nil
}

// Truncate implements storage.LogStore.
func (m *memlog) Truncate(before uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if before <= m.base {
		return nil
	}
	drop := before - m.base
	if drop > uint64(len(m.recs)) {
		drop = uint64(len(m.recs))
	}
	m.recs = append([][]byte(nil), m.recs[drop:]...)
	m.base += drop
	return nil
}

// LastSeq implements storage.LogStore.
func (m *memlog) LastSeq() (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.base + uint64(len(m.recs)) - 1, nil
}
