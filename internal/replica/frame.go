// Package replica implements proxy hot-standby replication: the primary
// proxy streams its recovery log — the WAL of §8, whose records already
// capture everything recovery needs — over TCP to a standby that replays it
// into warm per-shard log copies. On lease expiry the standby fences the
// storage backends, tops its copies up from the durable log tail, and runs
// the ordinary wal recovery over them, so promotion costs one fence
// round-trip plus a tail scan instead of a full log scan.
//
// Security: the stream carries only sealed log records (AES-GCM under the
// proxy key) plus plaintext framing the untrusted store already sees —
// record kinds, sizes, and timing. An observer of the replication link
// learns nothing an observer of the storage link could not.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame kinds. The stream is a sequence of length-prefixed, crc32c-protected
// frames; torn tails (a frame cut mid-write by a crash or connection drop)
// and corruption are detected per frame, so a standby never applies a
// partial record.
const (
	// frameHello opens a connection, primary → standby: seq carries the
	// protocol version, shard the primary's shard count, rec the magic.
	frameHello = byte(iota + 1)
	// frameRecord mirrors one log record: shard and seq name its slot in
	// that shard's store log, rec is the sealed record verbatim.
	frameRecord
	// frameHeartbeat is sent when the stream is idle so the standby's lease
	// clock keeps running without traffic.
	frameHeartbeat
	// frameSyncpoint asks the standby to ack immediately (barrier probe).
	frameSyncpoint
	// frameAck, standby → primary: seq is the cumulative count of record
	// frames received on this connection, which — because each connection
	// streams from offset 0 in stream order — equals the sender's global
	// stream offset covered so far.
	frameAck
)

const (
	frameMagic   = "OBRP"
	frameVersion = 1
	// maxFrameLen bounds a frame body so a corrupt length prefix cannot
	// drive an unbounded allocation. Records are epoch-sized (a write-batch
	// schedule or a padded checkpoint), far under this.
	maxFrameLen = 64 << 20
)

var (
	// ErrCorruptFrame means a frame's crc32c did not match its body.
	ErrCorruptFrame = errors.New("replica: frame failed crc32c check")
	// ErrTornFrame means the stream ended inside a frame — the partial
	// frame is discarded, never partially applied.
	ErrTornFrame = errors.New("replica: torn frame at stream tail")
	// ErrBadHello means the peer did not speak this protocol.
	ErrBadHello = errors.New("replica: bad hello")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frame is the unit of the replication stream.
type frame struct {
	kind  byte
	shard uint32
	seq   uint64
	rec   []byte
}

// frameHeader is kind + shard + seq; the length prefix and trailing crc32c
// bracket it and the record bytes.
const frameHeader = 1 + 4 + 8

// writeFrame encodes f as len(u32) | kind | shard | seq | rec | crc32c,
// little-endian, with the crc covering everything between len and crc.
func writeFrame(w io.Writer, f frame) error {
	body := frameHeader + len(f.rec)
	buf := make([]byte, 4+body+4)
	binary.LittleEndian.PutUint32(buf, uint32(body))
	buf[4] = f.kind
	binary.LittleEndian.PutUint32(buf[5:], f.shard)
	binary.LittleEndian.PutUint64(buf[9:], f.seq)
	copy(buf[4+frameHeader:], f.rec)
	crc := crc32.Checksum(buf[4:4+body], crcTable)
	binary.LittleEndian.PutUint32(buf[4+body:], crc)
	_, err := w.Write(buf)
	return err
}

// readFrame decodes the next frame. A clean end-of-stream between frames
// returns io.EOF; a stream that ends inside a frame returns ErrTornFrame.
func readFrame(r io.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return frame{}, io.EOF
		}
		return frame{}, fmt.Errorf("%w: %v", ErrTornFrame, err)
	}
	body := binary.LittleEndian.Uint32(lenBuf[:])
	if body < frameHeader || body > maxFrameLen {
		return frame{}, fmt.Errorf("%w: implausible frame length %d", ErrCorruptFrame, body)
	}
	buf := make([]byte, body+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, fmt.Errorf("%w: %v", ErrTornFrame, err)
	}
	crc := binary.LittleEndian.Uint32(buf[body:])
	if crc32.Checksum(buf[:body], crcTable) != crc {
		return frame{}, ErrCorruptFrame
	}
	f := frame{
		kind:  buf[0],
		shard: binary.LittleEndian.Uint32(buf[1:]),
		seq:   binary.LittleEndian.Uint64(buf[5:]),
	}
	if body > frameHeader {
		f.rec = buf[frameHeader:body]
	}
	return f, nil
}

// helloFrame builds the handshake frame for a primary serving shards shards.
func helloFrame(shards int) frame {
	return frame{kind: frameHello, shard: uint32(shards), seq: frameVersion, rec: []byte(frameMagic)}
}

// checkHello validates a received handshake and returns the shard count.
func checkHello(f frame) (int, error) {
	if f.kind != frameHello || string(f.rec) != frameMagic || f.seq != frameVersion {
		return 0, ErrBadHello
	}
	if f.shard == 0 || f.shard > 1<<16 {
		return 0, fmt.Errorf("%w: implausible shard count %d", ErrBadHello, f.shard)
	}
	return int(f.shard), nil
}
