// Package wal implements Obladi's recovery unit (§8 of the paper): an
// encrypted write-ahead log kept on untrusted cloud storage.
//
// Three record kinds are logged:
//
//   - batch records: the physical read schedule (paths, slot indices) of
//     every read batch, written BEFORE the reads execute, so a recovering
//     proxy can replay exactly the accesses the adversary already observed;
//   - checkpoint records: the proxy metadata needed to resume — position
//     map, per-bucket permutation/valid maps, counters, and the stash.
//     Checkpoints are deltas, with a periodic full checkpoint; deltas pad
//     the position-map to the maximum number of entries an epoch can touch
//     and the stash to its configured maximum, so record sizes leak nothing;
//   - commit records: the epoch-boundary durability point.
//
// All payloads are sealed with the proxy's key and bound to (kind, epoch,
// seq) so the storage server can neither forge nor replay stale records
// (Appendix A).
package wal

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"obladi/internal/cryptoutil"
	"obladi/internal/oramexec"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// Record kinds (plaintext framing byte; timing/kind of records is public).
const (
	kindBatch      = 1
	kindCheckpoint = 2
	kindCommit     = 3
)

// padKeyPrefix marks padding entries injected into checkpoint maps; the
// NUL byte cannot appear in real keys written through the public API.
const padKeyPrefix = "\x00pad"

// Config tunes the recovery unit.
type Config struct {
	// Key seals all log payloads. Required.
	Key *cryptoutil.Key
	// Shard and Shards identify this log's key-space partition (shard index
	// and total shard count). They are recorded in every checkpoint and
	// verified on recovery, so a deployment restarted with reordered storage
	// addresses or a different shard count fails loudly instead of silently
	// mis-routing the key space. Shards == 0 disables the check (unsharded
	// tools and tests).
	Shard, Shards int
	// PadPosEntries pads every checkpoint's position-map delta to this
	// many entries: the maximum number of keys an epoch can touch
	// (R*bread + bwrite). 0 disables padding (tests only).
	PadPosEntries int
	// PadStashEntries pads the logged stash to this many blocks
	// (the ORAM's stash limit). 0 disables padding (tests only).
	PadStashEntries int
	// PadValueSize sizes stash padding blocks. Defaults to 0 (empty pad
	// values); set to the ORAM value size for full-fidelity padding.
	PadValueSize int
	// FullCheckpointEvery forces a full (non-delta) checkpoint every N
	// epochs; 1 means every checkpoint is full. Default 16.
	FullCheckpointEvery int
}

func (c *Config) setDefaults() error {
	if c.Key == nil {
		return errors.New("wal: nil key")
	}
	if c.FullCheckpointEvery <= 0 {
		c.FullCheckpointEvery = 16
	}
	return nil
}

// Log is the recovery unit client.
type Log struct {
	store     storage.LogStore
	cfg       Config
	sinceFull int
}

// New creates a recovery unit over a durable log store.
func New(store storage.LogStore, cfg Config) (*Log, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	return &Log{store: store, cfg: cfg, sinceFull: cfg.FullCheckpointEvery}, nil
}

// batchRecord is the gob payload of a batch record.
type batchRecord struct {
	Epoch   uint64
	Batch   int
	Entries []oramexec.LogEntry
}

// checkpointRecord is the gob payload of a checkpoint record.
type checkpointRecord struct {
	Epoch uint64
	// Shard and ShardCount pin the checkpoint to its key-space partition.
	Shard, ShardCount int
	State             ringoram.State
}

// commitRecord is the gob payload of a commit record.
type commitRecord struct {
	Epoch uint64
}

// seal encrypts and authenticates a record. The binding covers the record
// kind; epoch ordering is carried (authenticated) inside the payload, and
// log-suffix freshness is the trusted counter's job (Appendix A), modeled
// here by the append-only LogStore.
func (l *Log) seal(kind byte, payload interface{}) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(0) // reserved/version
	if err := gob.NewEncoder(&buf).Encode(payload); err != nil {
		return nil, fmt.Errorf("wal: encoding record: %w", err)
	}
	sealed, err := l.cfg.Key.Seal(buf.Bytes(), cryptoutil.Binding(uint64(kind), 0, 0))
	if err != nil {
		return nil, err
	}
	return append([]byte{kind}, sealed...), nil
}

func (l *Log) open(rec []byte, payload interface{}) error {
	if len(rec) < 1 {
		return errors.New("wal: empty record")
	}
	plain, err := l.cfg.Key.Open(rec[1:], cryptoutil.Binding(uint64(rec[0]), 0, 0))
	if err != nil {
		return fmt.Errorf("wal: record failed authentication: %w", err)
	}
	if len(plain) < 1 {
		return errors.New("wal: short record")
	}
	return gob.NewDecoder(bytes.NewReader(plain[1:])).Decode(payload)
}

// AppendBatch durably logs a batch's physical read schedule. Must complete
// before the batch's reads are issued (write-ahead rule).
func (l *Log) AppendBatch(epoch uint64, batch int, entries []oramexec.LogEntry) error {
	rec, err := l.seal(kindBatch, batchRecord{Epoch: epoch, Batch: batch, Entries: entries})
	if err != nil {
		return err
	}
	_, err = l.appendStore(rec, true)
	return err
}

// AppendBatchDeferred logs a batch's read schedule without waiting for its
// durability barrier: the record rides the next Sync. The write-ahead rule
// is then the CALLER's to restore — Sync must return before the batch's
// reads are issued. The split lets several shards' schedule records (and,
// on a shared physical log, several records per shard) stand on one flush
// instead of one fsync per record.
func (l *Log) AppendBatchDeferred(epoch uint64, batch int, entries []oramexec.LogEntry) error {
	rec, err := l.seal(kindBatch, batchRecord{Epoch: epoch, Batch: batch, Entries: entries})
	if err != nil {
		return err
	}
	_, err = l.appendStore(rec, false)
	return err
}

// Sync makes every deferred append durable. A no-op when the store lacks
// the LogBatcher capability — its Appends were durable inline.
func (l *Log) Sync() error {
	if lb, ok := l.store.(storage.LogBatcher); ok {
		return lb.SyncLog()
	}
	return nil
}

// appendStore appends a sealed record: durably, or — when sync is false and
// the store supports deferred barriers — riding a later Sync. Stores
// without the capability always append durably, so every caller of the
// deferred variants degrades to the stricter behavior.
func (l *Log) appendStore(rec []byte, sync bool) (uint64, error) {
	if !sync {
		if lb, ok := l.store.(storage.LogBatcher); ok {
			return lb.AppendNoSync(rec)
		}
	}
	return l.store.Append(rec)
}

// PendingCheckpoint is an epoch-end metadata snapshot whose log append has
// been deferred. The pipelined epoch boundary snapshots at seal time (the
// metadata must be captured before the next epoch mutates it) and appends
// from the background committer, taking the expensive durable write off the
// batch schedule's hot path.
type PendingCheckpoint struct {
	epoch uint64
	state *ringoram.State
}

// Epoch returns the epoch the pending checkpoint belongs to.
func (c *PendingCheckpoint) Epoch() uint64 { return c.epoch }

// PrepareCheckpoint snapshots the epoch-end metadata without appending it.
// It decides full-vs-delta per the configured cadence, pads the delta so its
// size is workload independent, and resets the ORAM's dirty tracking (the
// snapshot owns those changes now; if the later append fails the proxy
// fail-stops, so no subsequent checkpoint can miss them).
func (l *Log) PrepareCheckpoint(epoch uint64, oram *ringoram.ORAM) (*PendingCheckpoint, error) {
	full := l.sinceFull >= l.cfg.FullCheckpointEvery
	st, err := oram.Snapshot(full)
	if err != nil {
		return nil, err
	}
	l.pad(st)
	oram.ClearDirty()
	if full {
		l.sinceFull = 1
	} else {
		l.sinceFull++
	}
	return &PendingCheckpoint{epoch: epoch, state: st}, nil
}

// AppendPrepared seals and durably appends a prepared checkpoint. Returns
// whether it was a full checkpoint.
func (l *Log) AppendPrepared(cp *PendingCheckpoint) (bool, error) {
	return l.appendPrepared(cp, true)
}

// AppendPreparedDeferred appends a prepared checkpoint without its barrier;
// the caller must Sync before treating the epoch as prepared (in the
// coordinator-commit protocol: before the coordinator's commit record may
// be written).
func (l *Log) AppendPreparedDeferred(cp *PendingCheckpoint) (bool, error) {
	return l.appendPrepared(cp, false)
}

func (l *Log) appendPrepared(cp *PendingCheckpoint, sync bool) (bool, error) {
	rec, err := l.seal(kindCheckpoint, checkpointRecord{Epoch: cp.epoch, Shard: l.cfg.Shard, ShardCount: l.cfg.Shards, State: *cp.state})
	if err != nil {
		return false, err
	}
	if _, err := l.appendStore(rec, sync); err != nil {
		return false, err
	}
	return cp.state.Full, nil
}

// AppendCheckpoint logs the epoch-end metadata snapshot synchronously:
// PrepareCheckpoint immediately followed by AppendPrepared. Returns whether
// a full checkpoint was written.
func (l *Log) AppendCheckpoint(epoch uint64, oram *ringoram.ORAM) (bool, error) {
	cp, err := l.PrepareCheckpoint(epoch, oram)
	if err != nil {
		return false, err
	}
	return l.AppendPrepared(cp)
}

// pad injects dummy entries so a delta's position-map size and the stash
// size are constants (§8 "Optimizations": "pads the map delta to the maximum
// number of entries that could have changed in an epoch").
func (l *Log) pad(st *ringoram.State) {
	if !st.Full && l.cfg.PadPosEntries > 0 {
		for i := 0; len(st.Pos) < l.cfg.PadPosEntries; i++ {
			st.Pos[fmt.Sprintf("%s-%d", padKeyPrefix, i)] = 0
		}
	}
	if l.cfg.PadStashEntries > 0 {
		for i := len(st.Stash); i < l.cfg.PadStashEntries; i++ {
			st.Stash = append(st.Stash, ringoram.StashBlock{
				Key:   fmt.Sprintf("%s-s%d", padKeyPrefix, i),
				Value: make([]byte, l.cfg.PadValueSize),
			})
		}
	}
}

// unpad strips padding entries from a decoded state.
func unpad(st *ringoram.State) {
	for k := range st.Pos {
		if len(k) >= len(padKeyPrefix) && k[:len(padKeyPrefix)] == padKeyPrefix {
			delete(st.Pos, k)
		}
	}
	kept := st.Stash[:0]
	for _, b := range st.Stash {
		if len(b.Key) >= len(padKeyPrefix) && b.Key[:len(padKeyPrefix)] == padKeyPrefix {
			continue
		}
		kept = append(kept, b)
	}
	st.Stash = kept
}

// IsCommitRecord reports whether a raw log record is a commit record.
// Record kinds are plaintext framing (their timing is public information);
// crash-injection tests use this to fail storage exactly between an epoch's
// prepare (checkpoints durable) and its commit point.
func IsCommitRecord(rec []byte) bool {
	return len(rec) > 0 && rec[0] == kindCommit
}

// DecodeCommitEpoch opens a raw log record and, when it is a commit record,
// returns the epoch it commits. ok is false (with no error) for other record
// kinds. The replication standby uses this to track the primary's committed
// epoch from the mirrored stream without running a full recovery per record.
func (l *Log) DecodeCommitEpoch(rec []byte) (epoch uint64, ok bool, err error) {
	if !IsCommitRecord(rec) {
		return 0, false, nil
	}
	var cr commitRecord
	if err := l.open(rec, &cr); err != nil {
		return 0, false, err
	}
	return cr.Epoch, true, nil
}

// AppendCommit durably marks epoch as committed. After this record is
// persisted the epoch's transactions may be acknowledged to clients.
func (l *Log) AppendCommit(epoch uint64) error {
	rec, err := l.seal(kindCommit, commitRecord{Epoch: epoch})
	if err != nil {
		return err
	}
	_, err = l.appendStore(rec, true)
	return err
}

// AppendCommitDeferred appends a commit record without waiting for its
// barrier. Only sound for records whose durability is OPTIONAL — in the
// coordinator-commit protocol, the non-coordinator shards' commit records
// are a recovery fast path (a shard that lost one recovers by consulting
// the coordinator's committed floor), so they may ride whatever flush comes
// next instead of each paying an fsync. The coordinator's own commit record
// is the global commit point and must use AppendCommit.
func (l *Log) AppendCommitDeferred(epoch uint64) error {
	rec, err := l.seal(kindCommit, commitRecord{Epoch: epoch})
	if err != nil {
		return err
	}
	_, err = l.appendStore(rec, false)
	return err
}

// Truncate drops log records that precede the newest full checkpoint at or
// below the given committed epoch. Call opportunistically after commits.
func (l *Log) Truncate() error {
	recs, err := l.store.Scan(0)
	if err != nil {
		return err
	}
	last, err := l.store.LastSeq()
	if err != nil {
		return err
	}
	base := last - uint64(len(recs)) + 1
	// Find the newest full checkpoint that is covered by a later commit.
	committed := uint64(0)
	for i := len(recs) - 1; i >= 0; i-- {
		if len(recs[i]) > 0 && recs[i][0] == kindCommit {
			var cr commitRecord
			if err := l.open(recs[i], &cr); err != nil {
				return err
			}
			committed = cr.Epoch
			break
		}
	}
	if committed == 0 {
		return nil
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if len(recs[i]) == 0 || recs[i][0] != kindCheckpoint {
			continue
		}
		var cp checkpointRecord
		if err := l.open(recs[i], &cp); err != nil {
			return err
		}
		if cp.State.Full && cp.Epoch <= committed {
			cut := i
			// The pipelined boundary appends the next epoch's batch
			// records while the committer is still writing this epoch's
			// checkpoint and commit records, so a live (uncommitted)
			// batch record can precede the checkpoint in the log. Those
			// records are the crash-replay schedule: never cut past one.
			for j := 0; j < cut; j++ {
				if len(recs[j]) == 0 || recs[j][0] != kindBatch {
					continue
				}
				var br batchRecord
				if err := l.open(recs[j], &br); err != nil {
					return err
				}
				if br.Epoch > committed {
					cut = j
					break
				}
			}
			return l.store.Truncate(base + uint64(cut))
		}
	}
	return nil
}

// RecoveryStats breaks down recovery cost for Table 11b.
type RecoveryStats struct {
	BytesRead     int
	PosEntries    int
	PermBuckets   int
	PathEntries   int
	DecodePosPerm time.Duration
	DecodePaths   time.Duration
}

// Recovery is the reconstructed durable state after a crash.
type Recovery struct {
	// CommittedEpoch is the last epoch whose commit record is durable; the
	// storage tree must be rolled back to it.
	CommittedEpoch uint64
	// HasCommit reports whether any commit record exists at all. A log with
	// checkpoints but no commit record is a first boot that died mid-prepare:
	// nothing ever committed, and callers should reinitialize instead of
	// recovering "epoch 0".
	HasCommit bool
	// Full and Deltas reconstruct the ORAM client metadata.
	Full   *ringoram.State
	Deltas []*ringoram.State
	// AbortedBatches holds the logged read schedules of every epoch that
	// was still uncommitted when the proxy crashed, in log (= schedule)
	// order; recovery replays them. With the pipelined epoch boundary up to
	// two uncommitted epochs can be in flight at once: the sealed epoch
	// whose commit had not landed, and its successor that was already
	// issuing read batches.
	AbortedBatches [][]oramexec.LogEntry
	// MaxAbortedEpoch is the highest epoch appearing in AbortedBatches (0
	// when none). Recovery commits its replay under this epoch so a later
	// crash can never replay the dead generation's records again.
	MaxAbortedEpoch uint64
	Stats           RecoveryStats
}

// ErrNoCheckpoint indicates the log holds no usable full checkpoint.
var ErrNoCheckpoint = errors.New("wal: no full checkpoint in log")

// Recover scans the log and reconstructs the latest committed state plus
// the aborted epoch's read schedule.
func (l *Log) Recover() (*Recovery, error) { return l.RecoverWithFloor(0) }

// RecoverWithFloor recovers like Recover but treats `floor` as committed even
// if this log's own newest commit record is older. The cross-shard epoch
// coordinator relies on this: every shard's checkpoint for an epoch is durable
// before the coordinator appends the epoch's global commit record (prepare
// precedes commit), so a crash between the coordinator's commit record and
// this shard's own leaves the shard exactly one commit record behind; the
// floor restores the coordinator's decision. A floor above this log's own
// commit requires the floor epoch's checkpoint to be present, otherwise
// recovery fails rather than silently resurrecting older state.
func (l *Log) RecoverWithFloor(floor uint64) (*Recovery, error) {
	recs, err := l.store.Scan(0)
	if err != nil {
		return nil, err
	}
	r := &Recovery{}
	for _, rec := range recs {
		r.Stats.BytesRead += len(rec)
	}
	// Pass 1: newest committed epoch.
	type parsed struct {
		kind  byte
		cp    *checkpointRecord
		batch *batchRecord
	}
	items := make([]parsed, len(recs))
	for i, rec := range recs {
		if len(rec) == 0 {
			return nil, fmt.Errorf("wal: empty record %d", i)
		}
		items[i].kind = rec[0]
		if rec[0] == kindCommit {
			var cr commitRecord
			if err := l.open(rec, &cr); err != nil {
				return nil, fmt.Errorf("wal: commit record %d: %w", i, err)
			}
			if cr.Epoch > r.CommittedEpoch {
				r.CommittedEpoch = cr.Epoch
			}
			r.HasCommit = true
		}
	}
	raised := floor > r.CommittedEpoch
	if raised {
		r.CommittedEpoch = floor
	}
	// Pass 2: decode checkpoints up to the committed epoch; find the newest
	// full one, then collect subsequent deltas. Also decode batch records
	// of the aborted epoch (committed+1).
	start := time.Now()
	var fullIdx = -1
	haveFloorCp := false
	cps := make([]*checkpointRecord, len(recs))
	for i, rec := range recs {
		if items[i].kind != kindCheckpoint {
			continue
		}
		var cp checkpointRecord
		if err := l.openCheckpoint(rec, &cp); err != nil {
			return nil, fmt.Errorf("wal: checkpoint record %d: %w", i, err)
		}
		if l.cfg.Shards != 0 && (cp.ShardCount != l.cfg.Shards || cp.Shard != l.cfg.Shard) {
			return nil, fmt.Errorf("wal: log belongs to shard %d of %d, configured as shard %d of %d — storage addresses reordered or shard count changed?",
				cp.Shard, cp.ShardCount, l.cfg.Shard, l.cfg.Shards)
		}
		if cp.Epoch > r.CommittedEpoch {
			continue // checkpoint of an epoch that never committed
		}
		if cp.Epoch == floor {
			haveFloorCp = true
		}
		cps[i] = &cp
		if cp.State.Full {
			fullIdx = i
		}
	}
	if raised && !haveFloorCp {
		return nil, fmt.Errorf("wal: coordinator committed epoch %d but no local checkpoint for it", floor)
	}
	if fullIdx < 0 {
		return nil, ErrNoCheckpoint
	}
	unpad(&cps[fullIdx].State)
	r.Full = &cps[fullIdx].State
	r.Stats.PosEntries += len(r.Full.Pos)
	r.Stats.PermBuckets += len(r.Full.Buckets)
	for i := fullIdx + 1; i < len(recs); i++ {
		if cps[i] == nil {
			continue
		}
		unpad(&cps[i].State)
		r.Deltas = append(r.Deltas, &cps[i].State)
		r.Stats.PosEntries += len(cps[i].State.Pos)
		r.Stats.PermBuckets += len(cps[i].State.Buckets)
	}
	r.Stats.DecodePosPerm = time.Since(start)

	start = time.Now()
	for i, rec := range recs {
		if items[i].kind != kindBatch {
			continue
		}
		var br batchRecord
		if err := l.openBatch(rec, &br); err != nil {
			return nil, fmt.Errorf("wal: batch record %d: %w", i, err)
		}
		if br.Epoch <= r.CommittedEpoch {
			continue // batch of a committed (already durable) epoch
		}
		// Epochs > committed: the sealed-but-uncommitted epoch plus, under
		// the pipelined boundary, its successor's already-issued batches.
		// Per-shard appends happen in schedule order (a batch record is
		// durable before its reads execute, and every record of epoch e
		// precedes epoch e+1's), so log order is replay order.
		r.AbortedBatches = append(r.AbortedBatches, br.Entries)
		if br.Epoch > r.MaxAbortedEpoch {
			r.MaxAbortedEpoch = br.Epoch
		}
		r.Stats.PathEntries += len(br.Entries)
	}
	r.Stats.DecodePaths = time.Since(start)
	return r, nil
}

func (l *Log) openCheckpoint(rec []byte, cp *checkpointRecord) error {
	return l.open(rec, cp)
}

func (l *Log) openBatch(rec []byte, br *batchRecord) error {
	return l.open(rec, br)
}
