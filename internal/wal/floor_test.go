package wal

import (
	"testing"

	"obladi/internal/oramexec"
)

// TestRecoverWithFloor models the lagging shard of a torn cross-shard commit:
// its log holds the prepared checkpoint for an epoch the coordinator decided,
// but not its own commit record. The floor must promote that epoch to
// committed; a floor with no matching checkpoint must fail loudly.
func TestRecoverWithFloor(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 1})

	seed(t, o, backend, exec, 1, 4)
	if _, err := l.AppendCheckpoint(1, o); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 prepared (checkpoint durable) but this shard's commit record
	// never made it.
	seed(t, o, backend, exec, 2, 4)
	if _, err := l.AppendCheckpoint(2, o); err != nil {
		t.Fatal(err)
	}

	rec, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CommittedEpoch != 1 {
		t.Fatalf("own recovery committed epoch = %d, want 1", rec.CommittedEpoch)
	}

	// Coordinator says epoch 2 committed: the floor promotes it.
	rec, err = l.RecoverWithFloor(2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CommittedEpoch != 2 {
		t.Fatalf("floored recovery committed epoch = %d, want 2", rec.CommittedEpoch)
	}
	// The epoch-2 checkpoint must be part of the recovered state: its
	// position map knows the keys written in epoch 2.
	found2 := false
	if rec.Full != nil {
		_, found2 = rec.Full.Pos["e2-k0"]
	}
	for _, d := range rec.Deltas {
		if _, ok := d.Pos["e2-k0"]; ok {
			found2 = true
		}
	}
	if !found2 {
		t.Fatal("floored recovery did not include the promoted epoch's checkpoint")
	}

	// A floor beyond any durable checkpoint is a protocol violation.
	if _, err := l.RecoverWithFloor(3); err == nil {
		t.Fatal("floor without a matching checkpoint accepted")
	}
}

// TestRecoverPipelinedTwoEpochsInFlight models a crash with the pipelined
// boundary mid-commit: epoch 2 is sealed (its batches and checkpoint are
// logged) but its commit record never landed, while epoch 3 had already
// issued read batches. Recovery must report epoch 1 as committed and return
// the batches of BOTH uncommitted epochs, in schedule order.
func TestRecoverPipelinedTwoEpochsInFlight(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 1})

	seed(t, o, backend, exec, 1, 4)
	if _, err := l.AppendCheckpoint(1, o); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	// Sealed epoch 2: read batch + write batch logged, checkpoint prepared
	// at seal and appended by the committer, no commit record (the crash).
	if err := l.AppendBatch(2, 0, []oramexec.LogEntry{{Kind: oramexec.LogAccess, Key: "e2-r"}}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(2, 1, []oramexec.LogEntry{{Kind: oramexec.LogWriteBump}}); err != nil {
		t.Fatal(err)
	}
	cp, err := l.PrepareCheckpoint(2, o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendPrepared(cp); err != nil {
		t.Fatal(err)
	}
	// Epoch 3 was already reading while epoch 2's commit was in flight.
	if err := l.AppendBatch(3, 0, []oramexec.LogEntry{{Kind: oramexec.LogAccess, Key: "e3-r"}}); err != nil {
		t.Fatal(err)
	}

	rec, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CommittedEpoch != 1 {
		t.Fatalf("committed epoch = %d, want 1", rec.CommittedEpoch)
	}
	if len(rec.AbortedBatches) != 3 {
		t.Fatalf("aborted batches = %d, want 3 (two of epoch 2, one of epoch 3)", len(rec.AbortedBatches))
	}
	if rec.AbortedBatches[0][0].Key != "e2-r" || rec.AbortedBatches[1][0].Kind != oramexec.LogWriteBump || rec.AbortedBatches[2][0].Key != "e3-r" {
		t.Fatalf("aborted batches out of schedule order: %+v", rec.AbortedBatches)
	}
	// Recovery commits its replay under the HIGHEST aborted epoch so these
	// records can never be replayed by a later crash.
	if rec.MaxAbortedEpoch != 3 {
		t.Fatalf("max aborted epoch = %d, want 3", rec.MaxAbortedEpoch)
	}
}

// TestTruncateKeepsLiveBatchRecords pins down truncation under the pipelined
// boundary: epoch 3's batch record lands in the log BEFORE epoch 2's
// checkpoint and commit records (the committer was still flushing), and a
// truncation after commit(2) must not drop it — it is epoch 3's crash-replay
// schedule.
func TestTruncateKeepsLiveBatchRecords(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 1})

	seed(t, o, backend, exec, 1, 4)
	if _, err := l.AppendCheckpoint(1, o); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 seals; epoch 3's first read batch is appended while the
	// committer is still writing epoch 2's checkpoint and commit records.
	if err := l.AppendBatch(2, 0, []oramexec.LogEntry{{Kind: oramexec.LogAccess, Key: "e2-r"}}); err != nil {
		t.Fatal(err)
	}
	cp, err := l.PrepareCheckpoint(2, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(3, 0, []oramexec.LogEntry{{Kind: oramexec.LogAccess, Key: "e3-r"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendPrepared(cp); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(2); err != nil {
		t.Fatal(err)
	}

	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	rec, err := l.Recover()
	if err != nil {
		t.Fatalf("recover after truncation: %v", err)
	}
	if rec.CommittedEpoch != 2 {
		t.Fatalf("committed epoch = %d, want 2", rec.CommittedEpoch)
	}
	if len(rec.AbortedBatches) != 1 || rec.AbortedBatches[0][0].Key != "e3-r" {
		t.Fatalf("truncation dropped epoch 3's live batch record: %+v", rec.AbortedBatches)
	}
	// The prefix before the live batch record IS gone: of the six appended
	// records, only [batch(3,0), checkpoint(2), commit(2)] remain.
	recs, err := backend.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("log holds %d records after truncation, want 3", len(recs))
	}
}
