package wal

import (
	"testing"

	"obladi/internal/oramexec"
)

// TestRecoverWithFloor models the lagging shard of a torn cross-shard commit:
// its log holds the prepared checkpoint for an epoch the coordinator decided,
// but not its own commit record. The floor must promote that epoch to
// committed; a floor with no matching checkpoint must fail loudly.
func TestRecoverWithFloor(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 1})

	seed(t, o, backend, exec, 1, 4)
	if _, err := l.AppendCheckpoint(1, o); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 prepared (checkpoint durable) but this shard's commit record
	// never made it.
	seed(t, o, backend, exec, 2, 4)
	if _, err := l.AppendCheckpoint(2, o); err != nil {
		t.Fatal(err)
	}

	rec, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CommittedEpoch != 1 {
		t.Fatalf("own recovery committed epoch = %d, want 1", rec.CommittedEpoch)
	}

	// Coordinator says epoch 2 committed: the floor promotes it.
	rec, err = l.RecoverWithFloor(2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CommittedEpoch != 2 {
		t.Fatalf("floored recovery committed epoch = %d, want 2", rec.CommittedEpoch)
	}
	// The epoch-2 checkpoint must be part of the recovered state: its
	// position map knows the keys written in epoch 2.
	found2 := false
	if rec.Full != nil {
		_, found2 = rec.Full.Pos["e2-k0"]
	}
	for _, d := range rec.Deltas {
		if _, ok := d.Pos["e2-k0"]; ok {
			found2 = true
		}
	}
	if !found2 {
		t.Fatal("floored recovery did not include the promoted epoch's checkpoint")
	}

	// A floor beyond any durable checkpoint is a protocol violation.
	if _, err := l.RecoverWithFloor(3); err == nil {
		t.Fatal("floor without a matching checkpoint accepted")
	}
}
