package wal

import (
	"errors"
	"fmt"
	"testing"

	"obladi/internal/cryptoutil"
	"obladi/internal/oramexec"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

func testORAM(t *testing.T) (*ringoram.ORAM, *storage.MemBackend) {
	t.Helper()
	p := ringoram.Params{NumBlocks: 64, Z: 4, S: 6, A: 4, KeySize: 16, ValueSize: 32, Seed: 17}
	backend := storage.NewMemBackend(p.Geometry().NumBuckets)
	o, err := oramexec.InitORAM(backend, cryptoutil.KeyFromSeed([]byte("wal")), p)
	if err != nil {
		t.Fatal(err)
	}
	return o, backend
}

func newLog(t *testing.T, store storage.LogStore, cfg Config) *Log {
	t.Helper()
	if cfg.Key == nil {
		cfg.Key = cryptoutil.KeyFromSeed([]byte("wal"))
	}
	l, err := New(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// seed runs a tiny workload so the ORAM has state worth checkpointing.
func seed(t *testing.T, o *ringoram.ORAM, backend *storage.MemBackend, exec *oramexec.Executor, epoch uint64, n int) {
	t.Helper()
	exec.BeginEpoch(epoch)
	var ops []oramexec.WriteOp
	for i := 0; i < n; i++ {
		ops = append(ops, oramexec.WriteOp{Key: fmt.Sprintf("e%d-k%d", epoch, i), Value: []byte(fmt.Sprintf("v%d", i))})
	}
	plan, err := exec.PlanWriteBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Execute(plan); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := backend.CommitEpoch(epoch); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointCommitRecover(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 1})

	seed(t, o, backend, exec, 1, 5)
	if full, err := l.AppendCheckpoint(1, o); err != nil || !full {
		t.Fatalf("checkpoint: full=%v err=%v", full, err)
	}
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	rec, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CommittedEpoch != 1 {
		t.Fatalf("committed epoch = %d", rec.CommittedEpoch)
	}
	if rec.Full == nil || !rec.Full.Full {
		t.Fatal("no full checkpoint recovered")
	}
	restored, err := ringoram.NewFromState(cryptoutil.KeyFromSeed([]byte("wal")), o.Params(), rec.Full, rec.Deltas...)
	if err != nil {
		t.Fatal(err)
	}
	a0, e0 := o.Counters()
	a1, e1 := restored.Counters()
	if a0 != a1 || e0 != e1 {
		t.Fatalf("counters: %d/%d vs %d/%d", a0, e0, a1, e1)
	}
}

func TestRecoverAppliesDeltas(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 3, PadPosEntries: 8, PadStashEntries: 10})

	for e := uint64(1); e <= 5; e++ {
		seed(t, o, backend, exec, e, 3)
		if _, err := l.AppendCheckpoint(e, o); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendCommit(e); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CommittedEpoch != 5 {
		t.Fatalf("committed epoch = %d", rec.CommittedEpoch)
	}
	if len(rec.Deltas) == 0 {
		t.Fatal("no deltas recovered despite FullCheckpointEvery=3")
	}
	restored, err := ringoram.NewFromState(cryptoutil.KeyFromSeed([]byte("wal")), o.Params(), rec.Full, rec.Deltas...)
	if err != nil {
		t.Fatal(err)
	}
	// All five epochs' keys must be readable through a fresh executor.
	exec2 := oramexec.New(restored, backend, oramexec.Config{})
	exec2.BeginEpoch(6)
	var ops []oramexec.ReadOp
	for e := 1; e <= 5; e++ {
		ops = append(ops, oramexec.ReadOp{Key: fmt.Sprintf("e%d-k0", e)})
	}
	plan, err := exec2.PlanReadBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec2.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if !r.Found || string(r.Value) != "v0" {
			t.Fatalf("%s = %q (found=%v)", r.Key, r.Value, r.Found)
		}
	}
}

func TestRecoverAbortedBatches(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 1})

	seed(t, o, backend, exec, 1, 4)
	if _, err := l.AppendCheckpoint(1, o); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	// Epoch 2 in flight: two batches logged, then crash (no commit).
	exec.BeginEpoch(2)
	plan, err := exec.PlanReadBatch([]oramexec.ReadOp{{Key: "e1-k0"}, {Key: "e1-k1"}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(2, 0, plan.Log()); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Execute(plan); err != nil {
		t.Fatal(err)
	}
	plan2, err := exec.PlanReadBatch([]oramexec.ReadOp{{Key: "e1-k2"}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(2, 1, plan2.Log()); err != nil {
		t.Fatal(err)
	}

	rec, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CommittedEpoch != 1 {
		t.Fatalf("committed epoch = %d", rec.CommittedEpoch)
	}
	if len(rec.AbortedBatches) != 2 {
		t.Fatalf("aborted batches = %d, want 2", len(rec.AbortedBatches))
	}
	if len(rec.AbortedBatches[0]) != len(plan.Log()) {
		t.Fatalf("batch 0: %d entries, logged %d", len(rec.AbortedBatches[0]), len(plan.Log()))
	}
}

func TestRecoverIgnoresCommittedEpochBatches(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 1})

	exec.BeginEpoch(1)
	plan, err := exec.PlanWriteBatch([]oramexec.WriteOp{{Key: "k", Value: []byte("v")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(1, 0, plan.Log()); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Execute(plan); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Flush(); err != nil {
		t.Fatal(err)
	}
	backend.CommitEpoch(1)
	if _, err := l.AppendCheckpoint(1, o); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	rec, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.AbortedBatches) != 0 {
		t.Fatalf("committed epoch's batches reported as aborted: %d", len(rec.AbortedBatches))
	}
}

func TestRecoverNoCheckpoint(t *testing.T) {
	_, backend := testORAM(t)
	l := newLog(t, backend, Config{})
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Recover(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("recover without checkpoint: %v", err)
	}
}

func TestPaddingMakesDeltasConstantSize(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 100, PadPosEntries: 16, PadStashEntries: 12, PadValueSize: 32})

	// Epoch 1's checkpoint is full (always, for recoverability); epochs 2
	// and 3 produce deltas with very different touched-key counts. The
	// deltas' position-map entry counts must be indistinguishable.
	seed(t, o, backend, exec, 1, 2)
	if full, err := l.AppendCheckpoint(1, o); err != nil || !full {
		t.Fatalf("first checkpoint: full=%v err=%v", full, err)
	}
	seed(t, o, backend, exec, 2, 1) // touches 1 key
	if full, err := l.AppendCheckpoint(2, o); err != nil || full {
		t.Fatalf("second checkpoint: full=%v err=%v", full, err)
	}
	seed(t, o, backend, exec, 3, 8) // touches 8 keys
	if full, err := l.AppendCheckpoint(3, o); err != nil || full {
		t.Fatalf("third checkpoint: full=%v err=%v", full, err)
	}
	recs, err := backend.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	var cp2, cp3 checkpointRecord
	for _, r := range recs {
		if len(r) > 0 && r[0] == kindCheckpoint {
			var cp checkpointRecord
			if err := l.open(r, &cp); err != nil {
				t.Fatal(err)
			}
			switch cp.Epoch {
			case 2:
				cp2 = cp
			case 3:
				cp3 = cp
			}
		}
	}
	if len(cp2.State.Pos) != 16 || len(cp3.State.Pos) != 16 {
		t.Fatalf("padded pos sizes: %d and %d, want 16", len(cp2.State.Pos), len(cp3.State.Pos))
	}
	if len(cp2.State.Stash) != len(cp3.State.Stash) {
		t.Fatalf("padded stash sizes differ: %d vs %d", len(cp2.State.Stash), len(cp3.State.Stash))
	}
}

func TestUnpadStripsPadding(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 1, PadPosEntries: 32, PadStashEntries: 16})
	seed(t, o, backend, exec, 1, 3)
	if _, err := l.AppendCheckpoint(1, o); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	rec, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	for k := range rec.Full.Pos {
		if k[0] == 0 {
			t.Fatalf("padding key %q leaked into recovered state", k)
		}
	}
	for _, b := range rec.Full.Stash {
		if len(b.Key) > 0 && b.Key[0] == 0 {
			t.Fatalf("padding stash block %q leaked", b.Key)
		}
	}
	// Restoring must succeed (padding would corrupt geometry checks).
	if _, err := ringoram.NewFromState(cryptoutil.KeyFromSeed([]byte("wal")), o.Params(), rec.Full); err != nil {
		t.Fatal(err)
	}
}

func TestTamperedRecordRejected(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 1})
	seed(t, o, backend, exec, 1, 2)
	if _, err := l.AppendCheckpoint(1, o); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	recs, _ := backend.Scan(0)
	recs[0][len(recs[0])/2] ^= 0xFF
	if _, err := l.Recover(); err == nil {
		t.Fatal("tampered log accepted")
	}
}

func TestTruncateDropsOldRecords(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 2})
	for e := uint64(1); e <= 6; e++ {
		seed(t, o, backend, exec, e, 2)
		if _, err := l.AppendCheckpoint(e, o); err != nil {
			t.Fatal(err)
		}
		if err := l.AppendCommit(e); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := backend.Scan(0)
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	after, _ := backend.Scan(0)
	if len(after) >= len(before) {
		t.Fatalf("truncate kept %d of %d records", len(after), len(before))
	}
	// Recovery still works from the truncated log.
	rec, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.CommittedEpoch != 6 {
		t.Fatalf("committed epoch after truncate = %d", rec.CommittedEpoch)
	}
	if _, err := ringoram.NewFromState(cryptoutil.KeyFromSeed([]byte("wal")), o.Params(), rec.Full, rec.Deltas...); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverStats(t *testing.T) {
	o, backend := testORAM(t)
	exec := oramexec.New(o, backend, oramexec.Config{})
	l := newLog(t, backend, Config{FullCheckpointEvery: 1})
	seed(t, o, backend, exec, 1, 4)
	if _, err := l.AppendCheckpoint(1, o); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	exec.BeginEpoch(2)
	plan, err := exec.PlanReadBatch([]oramexec.ReadOp{{Key: "e1-k0"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(2, 0, plan.Log()); err != nil {
		t.Fatal(err)
	}
	rec, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.BytesRead == 0 || rec.Stats.PosEntries == 0 || rec.Stats.PermBuckets == 0 {
		t.Fatalf("stats not collected: %+v", rec.Stats)
	}
	if rec.Stats.PathEntries == 0 {
		t.Fatal("path entries not counted")
	}
}

func TestNilKeyRejected(t *testing.T) {
	_, backend := testORAM(t)
	if _, err := New(backend, Config{}); err == nil {
		t.Fatal("nil key accepted")
	}
}
