package clientproto_test

import (
	"bufio"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"obladi/internal/clientproto"
	"obladi/internal/kvtxn"
	"obladi/internal/smallbank"
)

func extractReplicaField(line string) string {
	for _, f := range strings.Fields(line) {
		if strings.HasPrefix(f, "replica=") {
			return strings.TrimPrefix(f, "replica=")
		}
	}
	return ""
}

// launchSeq starts a binary and extracts one value per (marker, extract)
// pair, in the order the process prints them — for processes that announce
// several addresses (the replicating primary prints replica= then clients=).
func launchSeq(t *testing.T, bin string, args []string, markers []string, extracts []func(string) string) ([]string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	out := make([]string, 0, len(markers))
	deadline := time.After(30 * time.Second)
	for len(out) < len(markers) {
		select {
		case line, open := <-lines:
			if !open {
				t.Fatalf("%s exited before printing %q", bin, markers[len(out)])
			}
			if strings.Contains(line, markers[len(out)]) {
				v := extracts[len(out)](line)
				if v == "" {
					t.Fatalf("%s: could not extract from %q", bin, line)
				}
				out = append(out, v)
			}
		case <-deadline:
			t.Fatalf("%s: no %q line within 30s", bin, markers[len(out)])
		}
	}
	return out, cmd
}

// TestFailoverKillPrimary is the end-to-end failover drill the subsystem
// exists for: real binaries — durable obladi-storage, a primary obladi-proxy
// replicating to a hot standby obladi-proxy — with smallbank traffic through
// a failover-aware client, a SIGKILL of the primary mid-epoch, and the
// standby promoting on lease expiry. It must hold zero acknowledged-commit
// loss (every marker whose Commit returned nil is readable afterwards),
// money conservation, and sub-lease-order failover (bounded here loosely for
// CI scheduling noise).
func TestFailoverKillPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches binaries")
	}
	storageBin, proxyBin := buildBinaries(t)
	dataDir := filepath.Join(t.TempDir(), "store")
	const seed = "failover-e2e"

	storageAddr, _ := launch(t, storageBin,
		[]string{"-listen", "127.0.0.1:0", "-buckets", "4096", "-data-dir", dataDir},
		"obladi-storage: serving", extractLastField)

	commonArgs := []string{"-storage", storageAddr, "-listen", "127.0.0.1:0",
		"-keys", "1024", "-batch-interval", "1ms", "-seed", seed}
	primaryCmdArgs := append(append([]string{}, commonArgs...),
		"-replica-listen", "127.0.0.1:0", "-replica-ack")
	primaryOut, primaryCmd := launchSeq(t, proxyBin, primaryCmdArgs,
		[]string{"replica=", "clients="},
		[]func(string) string{extractReplicaField, extractClientsField})
	replicaAddr, primaryAddr := primaryOut[0], primaryOut[1]

	standbyArgs := append(append([]string{}, commonArgs...),
		"-standby-of", replicaAddr, "-lease", "500ms")
	standbyAddr, _ := launch(t, proxyBin, standbyArgs, "clients=", extractClientsField)

	fc, err := clientproto.DialMuxFailover(clientproto.FailoverConfig{
		Addrs:       []string{primaryAddr, standbyAddr},
		DialTimeout: time.Second,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		MaxWait:     30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db := clientproto.FailoverDB{C: fc}

	cfg := smallbank.Config{Accounts: 16, HotspotPct: 0, Seed: 7}
	if err := smallbank.Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	total, err := smallbank.TotalFunds(db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Worker 1: conservation-only smallbank traffic. Worker 2: unique marker
	// keys, recording exactly which ones the proxy ACKNOWLEDGED — the set the
	// failover contract promises to preserve. Both ride through the kill.
	var committed atomic.Int64
	var ackedMu sync.Mutex
	acked := []string{} // markers whose Commit returned nil
	stop := make(chan struct{})
	var workers sync.WaitGroup

	client := smallbank.NewClient(db, cfg, 99)
	workers.Add(1)
	go func() {
		defer workers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%3 == 2 {
				err = client.Amalgamate(i%cfg.Accounts, (i+5)%cfg.Accounts)
			} else {
				err = client.SendPayment(i%cfg.Accounts, (i+3)%cfg.Accounts, 1+int64(i%7))
			}
			if err == nil {
				committed.Add(1)
			}
		}
	}()
	workers.Add(1)
	go func() {
		defer workers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("marker-%05d", i)
			tx := db.Begin()
			err := tx.Write(key, []byte("m"))
			if err == nil {
				err = tx.Commit()
			} else {
				tx.Abort()
			}
			if err == nil {
				// The ack arrived: this commit must survive the failover.
				// An ErrCommitUnknown marker stays out of the set — its
				// outcome is legitimately unknown.
				ackedMu.Lock()
				acked = append(acked, key)
				ackedMu.Unlock()
			}
		}
	}()

	ackedLen := func() int {
		ackedMu.Lock()
		defer ackedMu.Unlock()
		return len(acked)
	}
	deadline := time.After(60 * time.Second)
	for committed.Load() < 25 || ackedLen() < 10 {
		select {
		case <-deadline:
			t.Fatalf("slow pre-kill traffic: %d payments, %d markers", committed.Load(), ackedLen())
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Pull the plug on the primary mid-epoch.
	preKillCommitted, preKillAcked := committed.Load(), ackedLen()
	killedAt := time.Now()
	if err := primaryCmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	primaryCmd.Wait()
	t.Logf("killed primary after %d payments, %d acked markers", preKillCommitted, preKillAcked)

	// The workers must start committing again on the promoted standby.
	deadline = time.After(60 * time.Second)
	for committed.Load() < preKillCommitted+10 || int64(ackedLen()) < int64(preKillAcked)+5 {
		select {
		case <-deadline:
			t.Fatalf("no progress after failover: %d payments (want > %d), %d markers (want > %d)",
				committed.Load(), preKillCommitted, ackedLen(), preKillAcked)
		case <-time.After(5 * time.Millisecond):
		}
	}
	failoverTime := time.Since(killedAt)
	close(stop)
	workers.Wait()
	t.Logf("failover: first post-kill progress confirmed within %v", failoverTime)
	if failoverTime > 30*time.Second {
		t.Fatalf("failover took %v", failoverTime)
	}

	// Zero acknowledged-commit loss: every marker the dead primary (or the
	// new one) acked is present.
	ackedMu.Lock()
	ackedSet := append([]string{}, acked...)
	ackedMu.Unlock()
	for _, key := range ackedSet {
		err := kvtxn.RunWithRetries(db, 20, func(tx kvtxn.Txn) error {
			_, found, err := tx.Read(key)
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("lost")
			}
			return nil
		})
		if err != nil {
			t.Fatalf("acknowledged commit lost across failover: %s: %v", key, err)
		}
	}

	// Money conservation: whatever prefix of smallbank transactions landed,
	// the total is exactly what was loaded.
	recovered, err := smallbank.TotalFunds(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != total {
		t.Fatalf("money not conserved across failover: %d before, %d after", total, recovered)
	}
}

// TestSigtermGracefulDrain verifies the graceful-shutdown satellite end to
// end: a SIGTERM'd proxy drains — seals and commits its final epoch — and
// exits cleanly; a successor proxy over the same store serves every
// acknowledged write. The storage server then drains on SIGTERM too.
func TestSigtermGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches binaries")
	}
	storageBin, proxyBin := buildBinaries(t)
	dataDir := filepath.Join(t.TempDir(), "store")
	const seed = "drain-e2e"

	storageAddr, storageCmd := launch(t, storageBin,
		[]string{"-listen", "127.0.0.1:0", "-buckets", "4096", "-data-dir", dataDir},
		"obladi-storage: serving", extractLastField)
	proxyArgs := []string{"-storage", storageAddr, "-listen", "127.0.0.1:0",
		"-keys", "1024", "-batch-interval", "1ms", "-seed", seed}
	proxyAddr, proxyCmd := launch(t, proxyBin, proxyArgs, "clients=", extractClientsField)

	mc, err := clientproto.DialMux(proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	db := clientproto.MuxDB{C: mc}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("drain-%d", i)
		if err := kvtxn.RunWithRetries(db, 20, func(tx kvtxn.Txn) error {
			return tx.Write(key, []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	mc.Close()

	if err := proxyCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := proxyCmd.Wait(); err != nil {
		t.Fatalf("proxy did not exit cleanly on SIGTERM: %v", err)
	}

	proxyAddr2, _ := launch(t, proxyBin, proxyArgs, "clients=", extractClientsField)
	mc2, err := clientproto.DialMux(proxyAddr2)
	if err != nil {
		t.Fatal(err)
	}
	defer mc2.Close()
	db2 := clientproto.MuxDB{C: mc2}
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("drain-%d", i)
		if err := kvtxn.RunWithRetries(db2, 20, func(tx kvtxn.Txn) error {
			v, found, err := tx.Read(key)
			if err != nil {
				return err
			}
			if !found || string(v) != "v" {
				return fmt.Errorf("%s lost across graceful drain: %q %v", key, v, found)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	mc2.Close()

	if err := storageCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := storageCmd.Wait(); err != nil {
		t.Fatalf("storage did not exit cleanly on SIGTERM: %v", err)
	}
}
