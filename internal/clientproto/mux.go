package clientproto

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"obladi/internal/core"
	"obladi/internal/kvtxn"
)

// This file is the server half of the multiplexed v2 protocol: one goroutine
// reads frames off the connection and routes them to per-session workers;
// workers execute a session's operations in wire order, registering reads
// asynchronously so a pipelined read set lands in one batch; replies stream
// back whenever they complete, interleaved across sessions, serialized only
// by the shared write mutex.

// muxSessionQueue bounds the per-session op queue. A session ahead of its
// worker by more than this exerts back-pressure on the connection's read
// loop (clients are expected to pipeline one transaction's ops, not
// thousands).
const muxSessionQueue = 128

// muxSession is one transaction session multiplexed on a connection.
type muxSession struct {
	id  uint32
	ops chan frame
	// readSem bounds the session's concurrently-resolving read futures: the
	// worker acquires a slot before spawning a resolver goroutine and blocks
	// at the cap, backpressuring the connection's read loop through ops
	// instead of growing goroutines (and their pending replies) without
	// bound.
	readSem chan struct{}
}

// replyFunc sends one reply frame; it is safe for concurrent use. The
// payload is the concatenation of p1 and p2 (either may be nil): read
// replies pass the status byte and the borrowed value slice separately so no
// intermediate payload is built. Payloads are fully copied into the write
// buffer before replyFunc returns.
type replyFunc func(kind frameKind, session, req uint32, p1, p2 []byte)

// serveMux serves the v2 protocol on one connection (magic already
// consumed). ctx is cancelled when the connection dies, aborting every open
// session's transaction and unblocking its waits.
func (s *Server) serveMux(conn net.Conn, r *bufio.Reader) {
	ctx, cancel := context.WithCancel(context.Background())
	var wmu sync.Mutex
	w := bufio.NewWriter(conn)
	// wbuf is the connection's reply-encode scratch, guarded by wmu: replies
	// from any session reuse one buffer instead of allocating per frame.
	var wbuf []byte
	reply := func(kind frameKind, session, req uint32, p1, p2 []byte) {
		wmu.Lock()
		defer wmu.Unlock()
		wbuf = appendFrame2(wbuf[:0], kind, session, req, p1, p2)
		if _, err := w.Write(wbuf); err != nil {
			conn.Close()
			return
		}
		if w.Flush() != nil {
			conn.Close()
		}
	}
	sessions := make(map[uint32]*muxSession)
	var workers sync.WaitGroup

	for {
		f, err := readMuxFrame(r)
		if err != nil {
			break
		}
		// Routed frames hand their pooled buffer to the session worker,
		// which releases it after the op; unrouted frames release here.
		switch f.kind {
		case frameBegin:
			if _, open := sessions[f.session]; open {
				reply(frameErr, f.session, f.req, encodeErrPayload(errCodeGeneric, "session already open"), nil)
				f.release()
				continue
			}
			if len(sessions) >= s.opt.MaxSessionsPerConn {
				// Session cap: shed the Begin instead of growing the worker
				// map without bound. Retryable once earlier sessions settle.
				s.shedSessions.Add(1)
				reply(frameErr, f.session, f.req, encodeErrPayload(errCodeShed,
					fmt.Sprintf("connection session cap (%d) reached", s.opt.MaxSessionsPerConn)), nil)
				f.release()
				continue
			}
			ms := &muxSession{
				id:      f.session,
				ops:     make(chan frame, muxSessionQueue),
				readSem: make(chan struct{}, s.opt.MaxPendingReadsPerSession),
			}
			sessions[f.session] = ms
			s.openSessions.Add(1)
			workers.Add(1)
			go func() {
				defer workers.Done()
				defer s.openSessions.Add(-1)
				s.runSession(ctx, ms, reply)
			}()
			ms.ops <- f
		case frameRead, frameWrite, frameDelete:
			ms, open := sessions[f.session]
			if !open {
				reply(frameErr, f.session, f.req, encodeErrPayload(errCodeGeneric, "no such session"), nil)
				f.release()
				continue
			}
			ms.ops <- f
		case frameCommit, frameAbort:
			ms, open := sessions[f.session]
			if !open {
				reply(frameErr, f.session, f.req, encodeErrPayload(errCodeGeneric, "no such session"), nil)
				f.release()
				continue
			}
			// The session ends with this op: frames for the id arriving
			// later (a client bug) get "no such session", never a stale
			// transaction. The worker drains the queue and exits.
			delete(sessions, f.session)
			ms.ops <- f
			close(ms.ops)
		default:
			reply(frameErr, f.session, f.req, encodeErrPayload(errCodeGeneric, fmt.Sprintf("unknown frame kind %d", f.kind)), nil)
			f.release()
		}
	}
	// Connection teardown: cancel session transactions (unblocking batch and
	// commit waits), close the queues so workers drain, and wait them out.
	cancel()
	for _, ms := range sessions {
		close(ms.ops)
	}
	workers.Wait()
	conn.Close()
}

// runSession executes one session's operations in wire order. Reads are
// registered asynchronously and resolved on side goroutines, so a pipelined
// read set shares one batch and the worker moves straight on to the next op;
// commit/abort wait for every outstanding read first (a commit may not
// overtake the reads it depends on).
func (s *Server) runSession(ctx context.Context, ms *muxSession, reply replyFunc) {
	tx := beginTxn(s.db, ctx)
	var reads sync.WaitGroup
	settled := false
	for f := range ms.ops {
		switch f.kind {
		case frameBegin:
			reply(frameOK, ms.id, f.req, nil, nil)
		case frameRead:
			// string(f.payload) copies the key out of the pooled buffer in
			// both branches, so the frame releases at the loop bottom while
			// the read is still in flight.
			if atx, ok := tx.(kvtxn.AsyncTxn); ok {
				// Acquire a resolver slot first: at the cap the worker blocks
				// here (not the whole server — ops and the TCP window absorb
				// the stall), keeping the per-session goroutine count bounded.
				ms.readSem <- struct{}{}
				fut := atx.ReadAsync(string(f.payload))
				reads.Add(1)
				go func(req uint32) {
					defer reads.Done()
					defer func() { <-ms.readSem }()
					v, found, err := fut.Wait(ctx)
					if !found {
						v = nil
					}
					if err != nil {
						reply(frameErr, ms.id, req, errReply(err), nil)
					} else {
						reply(frameOK, ms.id, req, foundByte(found), v)
					}
				}(f.req)
			} else {
				// Engines without asynchronous reads (the evaluation
				// baselines) execute the read inline: a kvtxn.Txn is
				// single-goroutine, so the worker may not run later ops
				// concurrently with a pending read. Sessions still
				// multiplex; only intra-session read pipelining is lost.
				v, found, err := tx.Read(string(f.payload))
				if !found {
					v = nil
				}
				if err != nil {
					reply(frameErr, ms.id, f.req, errReply(err), nil)
				} else {
					reply(frameOK, ms.id, f.req, foundByte(found), v)
				}
			}
		case frameWrite:
			key, value, err := parseWritePayload(f.payload)
			if err == nil {
				// The engine retains the value slice past the call (MVTSO
				// buffers it until the epoch's write batch), but value
				// aliases the pooled frame: copy before handing it over.
				err = tx.Write(key, append([]byte(nil), value...))
			}
			if err != nil {
				reply(frameErr, ms.id, f.req, errReply(err), nil)
			} else {
				reply(frameOK, ms.id, f.req, nil, nil)
			}
		case frameDelete:
			if err := tx.Delete(string(f.payload)); err != nil {
				reply(frameErr, ms.id, f.req, errReply(err), nil)
			} else {
				reply(frameOK, ms.id, f.req, nil, nil)
			}
		case frameCommit:
			reads.Wait()
			settled = true
			if err := tx.Commit(); err != nil {
				reply(frameErr, ms.id, f.req, errReply(err), nil)
			} else {
				reply(frameOK, ms.id, f.req, nil, nil)
			}
		case frameAbort:
			reads.Wait()
			settled = true
			tx.Abort()
			reply(frameOK, ms.id, f.req, nil, nil)
		}
		f.release()
	}
	if !settled {
		// Connection died with the session open: discard the transaction.
		reads.Wait()
		tx.Abort()
	}
}

// beginTxn starts a transaction bound to ctx when the engine supports it.
func beginTxn(db kvtxn.DB, ctx context.Context) kvtxn.Txn {
	if cdb, ok := db.(kvtxn.CtxDB); ok {
		return cdb.BeginCtx(ctx)
	}
	return db.Begin()
}

// Static status-byte segments for read replies (same wire format as
// encodeReadOKPayload, without building an intermediate payload).
var (
	replyFound    = []byte{1}
	replyNotFound = []byte{0}
)

// foundByte returns the read reply's status segment. A not-found reply
// carries no value bytes, matching encodeReadOKPayload.
func foundByte(found bool) []byte {
	if found {
		return replyFound
	}
	return replyNotFound
}

// errReply encodes err as a frameErr payload, classifying retryable aborts
// so the client can reconstruct errors.Is(err, kvtxn.ErrAborted) across the
// wire. Load-sheds get their own code so the client can also reconstruct
// errors.Is(err, core.ErrShed) and back off instead of retrying hot.
func errReply(err error) []byte {
	code := errCodeGeneric
	switch {
	case errors.Is(err, core.ErrShed):
		code = errCodeShed
	case errors.Is(err, kvtxn.ErrAborted) || errors.Is(err, core.ErrAborted) || errors.Is(err, core.ErrEpochFull):
		code = errCodeAborted
	}
	return encodeErrPayload(code, err.Error())
}
