package clientproto_test

import (
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"obladi/internal/clientproto"
	"obladi/internal/smallbank"
)

// TestKillRestartDurability is the end-to-end crash drill for the durable
// storage backend: real obladi-proxy + obladi-storage binaries with
// -data-dir, smallbank traffic, a SIGKILL of the storage server mid-epoch, a
// restart on the same directory, and a fresh proxy recovering from the
// recovered store. The workload runs only the total-preserving smallbank
// transactions (SendPayment, Amalgamate), so whichever prefix of epochs
// survived the kill, the money-conservation invariant must hold exactly.
func TestKillRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches binaries")
	}
	storageBin, proxyBin := buildBinaries(t)
	dataDir := filepath.Join(t.TempDir(), "store")
	const seed = "kill-restart-e2e"

	storageArgs := func() []string {
		return []string{"-listen", "127.0.0.1:0", "-buckets", "4096", "-data-dir", dataDir}
	}
	storageAddr, storageCmd := launch(t, storageBin, storageArgs(),
		"obladi-storage: serving", extractLastField)
	proxyArgs := func(storage string) []string {
		return []string{"-storage", storage, "-listen", "127.0.0.1:0", "-keys", "1024",
			"-batch-interval", "1ms", "-seed", seed}
	}
	proxyAddr, _ := launch(t, proxyBin, proxyArgs(storageAddr), "clients=", extractClientsField)

	cfg := smallbank.Config{Accounts: 16, HotspotPct: 0, Seed: 7}
	mc, err := clientproto.DialMux(proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	db := clientproto.MuxDB{C: mc}
	if err := smallbank.Load(db, cfg); err != nil {
		t.Fatal(err)
	}
	total, err := smallbank.TotalFunds(db, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Conservation-only traffic from a background worker; errors are
	// expected once the storage server dies under it.
	client := smallbank.NewClient(db, cfg, 99)
	var committed atomic.Int64
	stop := make(chan struct{})
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%3 == 2 {
				err = client.Amalgamate(i%cfg.Accounts, (i+5)%cfg.Accounts)
			} else {
				err = client.SendPayment(i%cfg.Accounts, (i+3)%cfg.Accounts, 1+int64(i%7))
			}
			if err == nil {
				committed.Add(1)
			}
			i++
		}
	}()

	// Let a healthy stretch of epochs commit, then pull the plug mid-epoch:
	// with a 1ms batch interval the server dies with batches in flight.
	deadline := time.After(30 * time.Second)
	for committed.Load() < 25 {
		select {
		case <-deadline:
			t.Fatalf("only %d transactions committed within 30s", committed.Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := storageCmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	storageCmd.Wait()
	close(stop)
	<-workerDone
	mc.Close()
	preKill := committed.Load()
	t.Logf("killed storage after %d committed transactions", preKill)

	// Restart storage on the same data dir; it must replay to the last
	// committed epoch. Then a fresh proxy (same key seed) runs recovery
	// against the recovered store.
	storageAddr2, _ := launch(t, storageBin, storageArgs(),
		"obladi-storage: serving", extractLastField)
	proxyAddr2, _ := launch(t, proxyBin, proxyArgs(storageAddr2), "clients=", extractClientsField)

	mc2, err := clientproto.DialMux(proxyAddr2)
	if err != nil {
		t.Fatal(err)
	}
	defer mc2.Close()
	db2 := clientproto.MuxDB{C: mc2}
	recovered, err := smallbank.TotalFunds(db2, cfg)
	if err != nil {
		t.Fatalf("reading balances after recovery: %v", err)
	}
	if recovered != total {
		t.Fatalf("money not conserved across the crash: %d before, %d after", total, recovered)
	}
	// The recovered deployment must still make progress.
	client2 := smallbank.NewClient(db2, cfg, 100)
	var payErr error
	for attempt := 0; attempt < 20; attempt++ {
		if payErr = client2.SendPayment(0, 1, 5); payErr == nil {
			break
		}
	}
	if payErr != nil {
		t.Fatalf("transaction after recovery: %v", payErr)
	}
	after, err := smallbank.TotalFunds(db2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if after != total {
		t.Fatalf("money not conserved after recovery traffic: %d vs %d", after, total)
	}
}
