package clientproto

// Wire-level overload-control tests with a scripted server: the server
// decides exactly which operations shed, which pins the client half of the
// contract — sheds are retryable aborts, but the failover client must pace
// its Begins with jittered backoff instead of hammering an overloaded (not
// dead) primary or sweeping the address list.

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"obladi/internal/core"
	"obladi/internal/kvtxn"
)

// shedServer accepts mux connections, counting them, and replies to every
// frame: Begin/Abort/Read/Write get OK, Commit gets a load-shed until the
// shed budget runs out, then OK.
func shedServer(t *testing.T, shedCommits int) (addr string, conns *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	conns = new(atomic.Int64)
	var sheds atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns.Add(1)
			go func() {
				defer c.Close()
				magic := make([]byte, len(muxMagic))
				if _, err := io.ReadFull(c, magic); err != nil {
					return
				}
				r := bufio.NewReaderSize(c, 1<<16)
				for {
					f, err := readMuxFrame(r)
					if err != nil {
						return
					}
					var reply []byte
					if f.kind == frameCommit && sheds.Add(1) <= int64(shedCommits) {
						reply = appendFrame2(nil, frameErr, f.session, f.req,
							encodeErrPayload(errCodeShed, "epoch out of slots"), nil)
					} else {
						reply = appendFrame(nil, frame{kind: frameOK, session: f.session, req: f.req})
					}
					f.release()
					if _, err := c.Write(reply); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String(), conns
}

// TestShedBackoffNoRetryStorm pins the retry-storm fix: retryable sheds
// from an overloaded primary make the failover client pace subsequent
// Begins with growing jittered backoff — on the SAME connection, never by
// redialing the address list — and a successful commit disarms the pacing.
func TestShedBackoffNoRetryStorm(t *testing.T) {
	addr, conns := shedServer(t, 3)
	fc, err := DialMuxFailover(FailoverConfig{
		Addrs:      []string{addr},
		BackoffMin: 20 * time.Millisecond,
		BackoffMax: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db := FailoverDB{C: fc}

	start := time.Now()
	var shedSeen int
	for i := 0; i < 4; i++ {
		tx := db.Begin()
		err := tx.Commit()
		if err == nil {
			break
		}
		if !errors.Is(err, core.ErrShed) || !errors.Is(err, kvtxn.ErrAborted) {
			t.Fatalf("commit %d: %v, want a retryable shed", i, err)
		}
		shedSeen++
	}
	if shedSeen != 3 {
		t.Fatalf("saw %d sheds, want 3", shedSeen)
	}
	// Three sheds arm backoffs of 20/40/80ms (jittered to at least half),
	// each served by the following Begin: the sequence cannot complete in
	// under 10+20+40 = 70ms. A storming client finishes in microseconds.
	if elapsed := time.Since(start); elapsed < 70*time.Millisecond {
		t.Fatalf("4 attempts took %v: sheds are not backing off", elapsed)
	}
	// Overloaded is not dead: the client must never have redialed.
	if n := conns.Load(); n != 1 {
		t.Fatalf("%d connections dialed, want 1 (shed retries must not sweep the address list)", n)
	}
	// The successful commit disarmed pacing: the next Begin is immediate.
	fc.shedMu.Lock()
	armed := fc.shedBackoff != 0 || !fc.shedUntil.IsZero()
	fc.shedMu.Unlock()
	if armed {
		t.Fatal("pacing still armed after a successful commit")
	}
}

// TestShedPacingJitterSpreads sanity-checks that the jitter helper spreads
// delays over [d/2, d) rather than synchronizing a fleet on one retry tick.
func TestShedPacingJitterSpreads(t *testing.T) {
	const d = time.Second
	seen := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		j := jitter(d)
		if j < d/2 || j >= d {
			t.Fatalf("jitter(%v) = %v, want [%v, %v)", d, j, d/2, d)
		}
		seen[j] = true
	}
	if len(seen) < 8 {
		t.Fatalf("64 jitter draws produced %d distinct values: not jittering", len(seen))
	}
}
