package clientproto_test

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"obladi/internal/clientproto"
	"obladi/internal/kvtxn"
)

// failoverConfig returns test-paced redial settings over addrs.
func failoverConfig(addrs ...string) clientproto.FailoverConfig {
	return clientproto.FailoverConfig{
		Addrs:       addrs,
		DialTimeout: time.Second,
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		MaxWait:     10 * time.Second,
	}
}

// TestFailoverClientRedials pins the client plane's reconnect-with-replay:
// when the preferred endpoint dies, in-flight transactions fail as retryable
// aborts and the retry loop lands on the next address in the list.
func TestFailoverClientRedials(t *testing.T) {
	srvA := newServer(t, 1)
	srvB := newServer(t, 1)
	fc, err := clientproto.DialMuxFailover(failoverConfig(srvA.Addr(), srvB.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db := clientproto.FailoverDB{C: fc}

	// A transaction before the failure lands on the preferred server.
	err = kvtxn.RunWithRetries(db, 10, func(tx kvtxn.Txn) error {
		return tx.Write("before", []byte("a"))
	})
	if err != nil {
		t.Fatal(err)
	}

	srvA.Close() // primary dies; its accepted connections die with it

	// The retry loop must ride the failure: the dead connection surfaces
	// retryable aborts, the client redials down the list onto B.
	err = kvtxn.RunWithRetries(db, 10, func(tx kvtxn.Txn) error {
		return tx.Write("after", []byte("b"))
	})
	if err != nil {
		t.Fatalf("transaction after failover: %v", err)
	}
	err = kvtxn.RunWithRetries(db, 10, func(tx kvtxn.Txn) error {
		v, found, err := tx.Read("after")
		if err != nil {
			return err
		}
		if !found || string(v) != "b" {
			return fmt.Errorf("read after failover: %q %v", v, found)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFailoverClientBoundedWait: with every endpoint down, the redial loop
// gives up within MaxWait instead of spinning forever.
func TestFailoverClientBoundedWait(t *testing.T) {
	// A listener that never accepts, closed before dialing: a dead address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	cfg := failoverConfig(dead)
	cfg.MaxWait = 300 * time.Millisecond
	start := time.Now()
	_, err = clientproto.DialMuxFailover(cfg)
	if err == nil {
		t.Fatal("dial of a dead address list succeeded")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("bounded wait took %v", waited)
	}
}

// TestFailoverBeginSurfacesDialError: a Begin while every endpoint is down
// yields a transaction whose Commit reports the dial failure (not a
// retryable "session settled" lie that would mask the outage).
func TestFailoverBeginSurfacesDialError(t *testing.T) {
	srv := newServer(t, 1)
	cfg := failoverConfig(srv.Addr())
	cfg.MaxWait = 200 * time.Millisecond
	fc, err := clientproto.DialMuxFailover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	db := clientproto.FailoverDB{C: fc}
	if err := kvtxn.RunWithRetries(db, 10, func(tx kvtxn.Txn) error {
		return tx.Write("k", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !fc.Lost() {
		if time.Now().After(deadline) {
			t.Fatal("client never observed server close")
		}
		time.Sleep(time.Millisecond)
	}
	// Begin now faces a full outage: redialing gives up within MaxWait and
	// the transaction surfaces the dial failure, not a commit-unknown and
	// not a misleading "session settled".
	tx := fc.Begin()
	err = tx.Commit()
	if err == nil {
		t.Fatal("commit during a full outage reported success")
	}
	if errors.Is(err, clientproto.ErrCommitUnknown) {
		t.Fatalf("never-sent transaction reported commit-unknown: %v", err)
	}
}
