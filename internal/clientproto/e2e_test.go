package clientproto_test

import (
	"bufio"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"obladi/internal/clientproto"
	"obladi/internal/kvtxn"
)

// TestBinariesEndToEnd builds the real obladi-storage and obladi-proxy
// binaries, launches them, and drives both wire protocols against the proxy
// — the deployment a remote application actually talks to. Skipped under
// -short (it compiles and execs binaries).
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and launches binaries")
	}
	storageBin, proxyBin := buildBinaries(t)

	storageAddr, _ := launch(t, storageBin, []string{"-listen", "127.0.0.1:0", "-buckets", "4096"},
		"obladi-storage: serving", extractLastField)
	proxyAddr, _ := launch(t, proxyBin,
		[]string{"-storage", storageAddr, "-listen", "127.0.0.1:0", "-keys", "1024", "-batch-interval", "1ms"},
		"clients=", extractClientsField)

	// Drive the mux protocol end to end.
	mc, err := clientproto.DialMux(proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	db := clientproto.MuxDB{C: mc}
	if err := kvtxn.RunWithRetries(db, 20, func(tx kvtxn.Txn) error {
		return tx.Write("e2e/key", []byte("through-the-binaries"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := kvtxn.RunWithRetries(db, 20, func(tx kvtxn.Txn) error {
		v, found, err := tx.Read("e2e/key")
		if err != nil {
			return err
		}
		if !found || string(v) != "through-the-binaries" {
			return fmt.Errorf("mux read back: %q %v", v, found)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The legacy line protocol shares the same port via auto-detect.
	lc, err := clientproto.DialClient(proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	ok := false
	for attempt := 0; attempt < 20 && !ok; attempt++ {
		if err := lc.Begin(); err != nil {
			t.Fatal(err)
		}
		v, found, err := lc.Read("e2e/key")
		if err != nil {
			lc.Abort()
			continue
		}
		if !found || string(v) != "through-the-binaries" {
			t.Fatalf("line read back: %q %v", v, found)
		}
		lc.Abort()
		ok = true
	}
	if !ok {
		t.Fatal("line client aborted on every attempt")
	}
}

// buildBinaries compiles the real obladi-storage and obladi-proxy binaries
// into a test temp dir.
func buildBinaries(t *testing.T) (storageBin, proxyBin string) {
	t.Helper()
	dir := t.TempDir()
	storageBin = filepath.Join(dir, "obladi-storage")
	proxyBin = filepath.Join(dir, "obladi-proxy")
	for bin, pkg := range map[string]string{
		storageBin: "obladi/cmd/obladi-storage",
		proxyBin:   "obladi/cmd/obladi-proxy",
	} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}
	return storageBin, proxyBin
}

func extractLastField(line string) string {
	fields := strings.Fields(line)
	return fields[len(fields)-1]
}

func extractClientsField(line string) string {
	for _, f := range strings.Fields(line) {
		if strings.HasPrefix(f, "clients=") {
			return strings.TrimPrefix(f, "clients=")
		}
	}
	return ""
}

// launch starts a binary, waits for a stdout line containing marker, and
// extracts a value from it. The returned command lets crash tests SIGKILL
// the process; it is also killed at test cleanup.
func launch(t *testing.T, bin string, args []string, marker string, extract func(string) string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, open := <-lines:
			if !open {
				t.Fatalf("%s exited before printing %q", bin, marker)
			}
			if strings.Contains(line, marker) {
				v := extract(line)
				if v == "" {
					t.Fatalf("%s: could not extract address from %q", bin, line)
				}
				return v, cmd
			}
		case <-deadline:
			t.Fatalf("%s: no %q line within 30s", bin, marker)
		}
	}
}
