package clientproto

import (
	"context"

	"obladi"
	"obladi/internal/kvtxn"
)

// WrapDB adapts the public obladi API to the kvtxn.DB the protocol server
// consumes, with the context and asynchronous-read extensions the mux server
// uses to tie sessions to connections and pipeline read sets.
func WrapDB(db *obladi.DB) kvtxn.DB { return dbAdapter{db: db} }

type dbAdapter struct {
	db *obladi.DB
}

var (
	_ kvtxn.DB    = dbAdapter{}
	_ kvtxn.CtxDB = dbAdapter{}
)

func (a dbAdapter) Begin() kvtxn.Txn { return txnAdapter{tx: a.db.Begin()} }

func (a dbAdapter) BeginCtx(ctx context.Context) kvtxn.Txn {
	return txnAdapter{tx: a.db.BeginCtx(ctx)}
}

func (a dbAdapter) Close() error { return a.db.Close() }

type txnAdapter struct {
	tx *obladi.Txn
}

var _ kvtxn.AsyncTxn = txnAdapter{}

func (t txnAdapter) Read(key string) ([]byte, bool, error) { return t.tx.Read(key) }

func (t txnAdapter) ReadAsync(key string) kvtxn.ReadFuture {
	return futureAdapter{f: t.tx.ReadAsync(key)}
}

func (t txnAdapter) ReadMany(keys []string) ([]kvtxn.Value, error) {
	res, err := t.tx.ReadMany(keys)
	if err != nil {
		return nil, err
	}
	out := make([]kvtxn.Value, len(res))
	for i, r := range res {
		out[i] = kvtxn.Value{Key: r.Key, Value: r.Value, Found: r.Found}
	}
	return out, nil
}

func (t txnAdapter) Write(key string, value []byte) error { return t.tx.Write(key, value) }
func (t txnAdapter) Delete(key string) error              { return t.tx.Delete(key) }
func (t txnAdapter) Commit() error                        { return t.tx.Commit() }
func (t txnAdapter) Abort()                               { t.tx.Abort() }

type futureAdapter struct {
	f *obladi.Future
}

func (fa futureAdapter) Wait(ctx context.Context) ([]byte, bool, error) {
	return fa.f.Wait(ctx)
}
