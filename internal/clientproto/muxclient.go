package clientproto

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"obladi/internal/core"
	"obladi/internal/kvtxn"
)

var (
	// ErrConnLost marks an operation that failed because the connection
	// died before the server acted on it (or before we learned it did).
	// Pre-commit it also wraps kvtxn.ErrAborted: the transaction's session
	// died with the connection, nothing of it can commit, and the caller's
	// retry loop may safely replay it — against a failover peer if one is
	// configured.
	ErrConnLost = errors.New("clientproto: connection lost")
	// ErrCommitUnknown means the COMMIT frame was fully sent but the
	// connection died before the decision arrived. The server may have
	// committed; at-most-once acknowledgement demands this NOT be
	// retryable, so it deliberately does not wrap kvtxn.ErrAborted —
	// blindly replaying could double-apply the transaction. Callers must
	// re-read to learn the outcome (or use naturally idempotent writes).
	ErrCommitUnknown = errors.New("clientproto: commit outcome unknown (connection lost after COMMIT was sent)")
)

// MuxClient speaks the multiplexed v2 protocol: many concurrent transaction
// sessions over one TCP connection, requests pipelined without waiting for
// replies. It is safe for concurrent use; each MuxTxn it hands out follows
// the kvtxn.Txn contract (single goroutine, though read futures may be
// resolved from others).
type MuxClient struct {
	conn net.Conn

	wmu  sync.Mutex
	w    *bufio.Writer
	wbuf []byte // request-encode scratch, guarded by wmu

	mu          sync.Mutex
	nextSession uint32
	pending     map[uint64]chan frame
	readErr     error
	closed      bool
}

// DialMux connects to a proxy server and opens the v2 protocol.
func DialMux(addr string) (*MuxClient, error) { return dialMuxTimeout(addr, 0) }

func dialMuxTimeout(addr string, timeout time.Duration) (*MuxClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// Frames are small and flushed eagerly; Nagle buffering would add
		// delayed-ACK stalls to every pipelined burst.
		tc.SetNoDelay(true)
	}
	c := &MuxClient{
		conn:    conn,
		w:       bufio.NewWriterSize(conn, 1<<16),
		pending: make(map[uint64]chan frame),
	}
	if _, err := conn.Write([]byte(muxMagic)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("clientproto: sending magic: %w", err)
	}
	go c.readLoop()
	return c, nil
}

// Close closes the connection; pending operations fail with a
// connection-lost error.
func (c *MuxClient) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *MuxClient) readLoop() {
	r := bufio.NewReaderSize(c.conn, 1<<16)
	for {
		f, err := readMuxFrame(r)
		if err != nil {
			c.fail(err)
			return
		}
		key := uint64(f.session)<<32 | uint64(f.req)
		c.mu.Lock()
		ch := c.pending[key]
		delete(c.pending, key)
		c.mu.Unlock()
		if ch != nil {
			ch <- f
		}
	}
}

// fail records the connection error and wakes every pending wait.
func (c *MuxClient) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readErr == nil {
		c.readErr = err
	}
	for key, ch := range c.pending {
		delete(c.pending, key)
		close(ch)
	}
}

// send registers a pending reply and writes one request frame. The returned
// channel delivers the reply (or closes on connection loss).
func (c *MuxClient) send(kind frameKind, session, req uint32, payload []byte) (chan frame, error) {
	if frameHeaderLen+len(payload) > muxMaxFrame {
		return nil, fmt.Errorf("clientproto: request of %d bytes exceeds frame limit", len(payload))
	}
	ch := make(chan frame, 1)
	key := uint64(session)<<32 | uint64(req)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("clientproto: client closed")
	}
	if err := c.readErr; err != nil {
		c.mu.Unlock()
		// The connection is already known dead and this frame was never
		// sent, so the operation is as retryable as any pre-commit loss.
		return nil, fmt.Errorf("%w: %v: %w", ErrConnLost, err, kvtxn.ErrAborted)
	}
	c.pending[key] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.wbuf = appendFrame(c.wbuf[:0], frame{kind: kind, session: session, req: req, payload: payload})
	_, err := c.w.Write(c.wbuf)
	if err == nil {
		err = c.w.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, key)
		c.mu.Unlock()
		// A failed write proves the connection is dead: mark the client lost
		// immediately (the failover dialer keys off Lost(); waiting for the
		// read loop to notice would keep handing out this dead connection)
		// and fail the other pending waits now rather than on the EOF.
		c.fail(fmt.Errorf("clientproto: send failed: %w", err))
		// A failed send can at worst have put a torn frame on the wire,
		// which the server cannot act on — safe to classify retryable.
		return nil, fmt.Errorf("%w: send: %v: %w", ErrConnLost, err, kvtxn.ErrAborted)
	}
	return ch, nil
}

// Lost reports whether the client's connection has failed or been closed;
// the failover dialer uses it to decide when to redial.
func (c *MuxClient) Lost() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed || c.readErr != nil
}

// connLost reports the connection-level error behind a closed reply channel.
// It wraps both ErrConnLost and kvtxn.ErrAborted: an operation that never
// got its reply died with its session, so before the commit point it is
// safely retryable (Commit reclassifies its own losses as ErrCommitUnknown).
func (c *MuxClient) connLost() error {
	c.mu.Lock()
	err := c.readErr
	c.mu.Unlock()
	if err == nil {
		err = fmt.Errorf("clientproto: client closed")
	}
	return fmt.Errorf("%w: %v: %w", ErrConnLost, err, kvtxn.ErrAborted)
}

// replyError converts a reply frame into the operation's error result,
// reconstructing retryable aborts so errors.Is(err, kvtxn.ErrAborted) holds
// across the wire — and load-sheds so errors.Is(err, core.ErrShed) does too,
// letting the client back off instead of retrying hot.
func (c *MuxClient) replyError(f frame) error {
	switch f.kind {
	case frameOK:
		return nil
	case frameErr:
		code, msg, err := parseErrPayload(f.payload)
		if err != nil {
			return fmt.Errorf("clientproto: malformed error reply")
		}
		switch code {
		case errCodeAborted:
			return fmt.Errorf("%w: %s", kvtxn.ErrAborted, msg)
		case errCodeShed:
			return fmt.Errorf("%w: %w: %s", kvtxn.ErrAborted, core.ErrShed, msg)
		}
		return fmt.Errorf("clientproto: %s", msg)
	default:
		return fmt.Errorf("clientproto: unexpected reply kind %d", f.kind)
	}
}

// Begin opens a new transaction session. The BEGIN frame is pipelined like
// every other request: Begin does not wait for the server's ack, which is
// collected with the other outstanding acks at Commit/Abort.
func (c *MuxClient) Begin() *MuxTxn {
	return c.BeginCtx(context.Background())
}

// BeginCtx is Begin with a context applied to every wait the transaction
// performs (read futures, commit).
func (c *MuxClient) BeginCtx(ctx context.Context) *MuxTxn {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	c.nextSession++
	id := c.nextSession
	c.mu.Unlock()
	t := &MuxTxn{c: c, session: id, ctx: ctx}
	t.enqueue(frameBegin, nil, "begin")
	return t
}

// MuxTxn is one multiplexed transaction session.
type MuxTxn struct {
	c       *MuxClient
	session uint32
	ctx     context.Context
	nextReq uint32
	// pend holds the acks of pipelined mutations (begin/write/delete) not
	// yet collected; Commit and Abort drain it.
	pend    []*MuxOpFuture
	settled bool
	sendErr error
}

// enqueue sends one request frame and tracks its ack as an OpFuture.
func (t *MuxTxn) enqueue(kind frameKind, payload []byte, op string) *MuxOpFuture {
	t.nextReq++
	f := &MuxOpFuture{t: t, op: op}
	if t.sendErr != nil {
		f.done, f.err = true, t.sendErr
		return f
	}
	ch, err := t.c.send(kind, t.session, t.nextReq, payload)
	if err != nil {
		t.sendErr = err
		f.done, f.err = true, err
		return f
	}
	f.ch = ch
	t.pend = append(t.pend, f)
	return f
}

// MuxOpFuture is the pending ack of a pipelined mutation.
type MuxOpFuture struct {
	t  *MuxTxn
	op string
	ch chan frame

	mu   sync.Mutex
	done bool
	err  error
}

// Wait blocks until the operation's ack arrives or ctx is done (nil means
// the transaction's context). It is idempotent; Commit/Abort call it for
// every ack the caller didn't collect.
func (f *MuxOpFuture) Wait(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return f.err
	}
	if ctx == nil {
		ctx = f.t.ctx
	}
	select {
	case reply, ok := <-f.ch:
		f.done = true
		if !ok {
			f.err = f.t.c.connLost()
		} else {
			f.err = f.t.c.replyError(reply)
			reply.release()
		}
		return f.err
	case <-ctx.Done():
		// The ack may still arrive; the future stays pending so a later
		// drain can collect it.
		return ctx.Err()
	}
}

// MuxFuture is a pending read result.
type MuxFuture struct {
	t  *MuxTxn
	ch chan frame

	mu    sync.Mutex
	done  bool
	value []byte
	found bool
	err   error
}

// Wait blocks until the read's batch executes server-side and the reply
// arrives, or ctx is done (nil means the transaction's context).
func (f *MuxFuture) Wait(ctx context.Context) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return f.value, f.found, f.err
	}
	if ctx == nil {
		ctx = f.t.ctx
	}
	if f.ch == nil {
		f.done = true
		f.err = f.t.sendErrOrLost()
		return nil, false, f.err
	}
	select {
	case reply, ok := <-f.ch:
		f.done = true
		switch {
		case !ok:
			f.err = f.t.c.connLost()
		case reply.kind == frameOK:
			// The parsed value aliases the reply's pooled buffer; copy it
			// out before the buffer goes back to the pool (the future's
			// result outlives the frame).
			var v []byte
			v, f.found, f.err = parseReadOKPayload(reply.payload)
			if f.found {
				f.value = append([]byte(nil), v...)
			}
			reply.release()
		default:
			f.err = f.t.c.replyError(reply)
			reply.release()
		}
		return f.value, f.found, f.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

func (t *MuxTxn) sendErrOrLost() error {
	if t.sendErr != nil {
		return t.sendErr
	}
	return t.c.connLost()
}

// ReadAsync pipelines a READ frame and returns its future immediately: a
// transaction can put its whole read set on the wire before the first batch
// fires, and the server packs the reads into the same batch.
func (t *MuxTxn) ReadAsync(key string) kvtxn.ReadFuture {
	f := &MuxFuture{t: t}
	if t.settled {
		f.done, f.err = true, fmt.Errorf("%w: session settled", kvtxn.ErrAborted)
		return f
	}
	if t.sendErr != nil {
		f.done, f.err = true, t.sendErr
		return f
	}
	t.nextReq++
	ch, err := t.c.send(frameRead, t.session, t.nextReq, []byte(key))
	if err != nil {
		t.sendErr = err
		f.done, f.err = true, err
		return f
	}
	f.ch = ch
	return f
}

// Read fetches one key, blocking until its batch executes.
func (t *MuxTxn) Read(key string) ([]byte, bool, error) {
	return t.ReadAsync(key).Wait(t.ctx)
}

// ReadMany pipelines all keys, sharing one read batch server-side.
func (t *MuxTxn) ReadMany(keys []string) ([]kvtxn.Value, error) {
	futures := make([]kvtxn.ReadFuture, len(keys))
	for i, k := range keys {
		futures[i] = t.ReadAsync(k)
	}
	out := make([]kvtxn.Value, len(keys))
	for i, f := range futures {
		v, found, err := f.Wait(t.ctx)
		if err != nil {
			return nil, err
		}
		out[i] = kvtxn.Value{Key: keys[i], Value: v, Found: found}
	}
	return out, nil
}

// WriteAsync pipelines a WRITE frame; the returned future carries the ack.
func (t *MuxTxn) WriteAsync(key string, value []byte) *MuxOpFuture {
	if t.settled {
		return &MuxOpFuture{t: t, op: "write", done: true, err: fmt.Errorf("%w: session settled", kvtxn.ErrAborted)}
	}
	return t.enqueue(frameWrite, encodeWritePayload(key, value), "write")
}

// Write pipelines a write without waiting for its ack; a failure surfaces on
// WriteAsync's future, at Commit, or both.
func (t *MuxTxn) Write(key string, value []byte) error {
	f := t.WriteAsync(key, value)
	if f.done {
		return f.err
	}
	return nil
}

// DeleteAsync pipelines a DELETE frame; the returned future carries the ack.
func (t *MuxTxn) DeleteAsync(key string) *MuxOpFuture {
	if t.settled {
		return &MuxOpFuture{t: t, op: "delete", done: true, err: fmt.Errorf("%w: session settled", kvtxn.ErrAborted)}
	}
	return t.enqueue(frameDelete, []byte(key), "delete")
}

// Delete pipelines a delete without waiting for its ack.
func (t *MuxTxn) Delete(key string) error {
	f := t.DeleteAsync(key)
	if f.done {
		return f.err
	}
	return nil
}

// Commit pipelines the COMMIT frame, then collects every outstanding ack and
// the commit decision. The first failed mutation's error wins (the server
// aborted the transaction at that op); otherwise Commit returns the epoch's
// decision.
func (t *MuxTxn) Commit() error {
	if t.settled {
		return fmt.Errorf("%w: session settled", kvtxn.ErrAborted)
	}
	t.settled = true
	if t.sendErr != nil {
		return t.sendErr
	}
	t.nextReq++
	ch, err := t.c.send(frameCommit, t.session, t.nextReq, nil)
	if err != nil {
		return err
	}
	var firstErr error
	for _, f := range t.pend {
		if err := f.Wait(t.ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", f.op, err)
		}
	}
	t.pend = nil
	// From here the COMMIT frame is fully on the wire, so a connection loss
	// no longer proves the transaction didn't commit. A server-REPORTED
	// abort (an error reply that arrived) is still an authoritative decision
	// and stays retryable; a conn-loss error is not a decision at all and
	// must surface as ErrCommitUnknown — at-most-once acknowledgement.
	lostAck := firstErr != nil && errors.Is(firstErr, ErrConnLost)
	select {
	case reply, ok := <-ch:
		if !ok {
			if firstErr != nil && !lostAck {
				return firstErr
			}
			return fmt.Errorf("%w: %v", ErrCommitUnknown, t.c.connLost())
		}
		err := t.c.replyError(reply)
		reply.release()
		if err != nil {
			if firstErr != nil && !lostAck {
				return firstErr
			}
			return err
		}
		if lostAck {
			// The decision arrived, so earlier acks on the same ordered
			// stream must have too; a lost ack with a received decision
			// means the decision governs.
			return nil
		}
		return firstErr
	case <-t.ctx.Done():
		return fmt.Errorf("%w: %v while awaiting decision", ErrCommitUnknown, t.ctx.Err())
	}
}

// Abort pipelines the ABORT frame and collects the outstanding acks,
// discarding their errors (the transaction is being thrown away).
func (t *MuxTxn) Abort() {
	if t.settled {
		return
	}
	t.settled = true
	if t.sendErr != nil {
		return
	}
	t.nextReq++
	ch, err := t.c.send(frameAbort, t.session, t.nextReq, nil)
	if err != nil {
		return
	}
	for _, f := range t.pend {
		f.Wait(t.ctx)
	}
	t.pend = nil
	select {
	case reply := <-ch:
		reply.release()
	case <-t.ctx.Done():
	}
}

// MuxDB adapts a MuxClient to the kvtxn.DB interface so workload suites and
// benchmarks run unchanged over the multiplexed wire.
type MuxDB struct {
	C *MuxClient
}

var (
	_ kvtxn.DB       = MuxDB{}
	_ kvtxn.CtxDB    = MuxDB{}
	_ kvtxn.AsyncTxn = (*MuxTxn)(nil)
)

// Begin implements kvtxn.DB.
func (d MuxDB) Begin() kvtxn.Txn { return d.C.Begin() }

// BeginCtx implements kvtxn.CtxDB.
func (d MuxDB) BeginCtx(ctx context.Context) kvtxn.Txn { return d.C.BeginCtx(ctx) }

// Close implements kvtxn.DB.
func (d MuxDB) Close() error { return d.C.Close() }
