package clientproto

import (
	"bytes"
	"testing"
)

// TestFrameRoundTrip pins the wire encoding: append → decode is identity.
func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{kind: frameBegin, session: 1, req: 1},
		{kind: frameRead, session: 0xdeadbeef, req: 0xffffffff, payload: []byte("some/key")},
		{kind: frameWrite, session: 7, req: 9, payload: encodeWritePayload("k", []byte{0, 1, 2})},
		{kind: frameErr, session: 3, req: 4, payload: encodeErrPayload(errCodeAborted, "boom")},
		{kind: frameOK, session: 3, req: 4, payload: encodeReadOKPayload([]byte("v"), true)},
	}
	for _, want := range cases {
		buf := appendFrame(nil, want)
		got, err := decodeFrame(buf[4:])
		if err != nil {
			t.Fatalf("decode %v: %v", want, err)
		}
		if got.kind != want.kind || got.session != want.session || got.req != want.req ||
			!bytes.Equal(got.payload, want.payload) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestWritePayloadRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		key   string
		value []byte
	}{
		{"k", []byte("v")},
		{"", nil},
		{"key with spaces and \n newline", []byte{0, 0xff}},
	} {
		k, v, err := parseWritePayload(encodeWritePayload(tc.key, tc.value))
		if err != nil {
			t.Fatalf("%q: %v", tc.key, err)
		}
		if k != tc.key || !bytes.Equal(v, tc.value) {
			t.Fatalf("got %q/%v want %q/%v", k, v, tc.key, tc.value)
		}
	}
}

// FuzzDecodeFrame exercises frame and payload decoding with arbitrary bytes:
// no panic, and every successfully decoded frame must re-encode to the exact
// input (the codec is canonical, so a desync can never hide in a
// decode/encode asymmetry — the PR 1 multi-line-abort bug class).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(appendFrame(nil, frame{kind: frameBegin, session: 1, req: 1})[4:])
	f.Add(appendFrame(nil, frame{kind: frameRead, session: 2, req: 9, payload: []byte("key")})[4:])
	f.Add(appendFrame(nil, frame{kind: frameWrite, session: 3, req: 2, payload: encodeWritePayload("k", []byte("v"))})[4:])
	f.Add(appendFrame(nil, frame{kind: frameErr, session: 4, req: 3, payload: encodeErrPayload(errCodeAborted, "x")})[4:])
	f.Add(appendFrame(nil, frame{kind: frameOK, session: 5, req: 4, payload: encodeReadOKPayload(nil, false)})[4:])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := decodeFrame(data)
		if err != nil {
			if len(data) >= frameHeaderLen {
				t.Fatalf("decode rejected a full header: %v", err)
			}
			return
		}
		if enc := appendFrame(nil, fr); !bytes.Equal(enc[4:], data) {
			t.Fatalf("re-encode mismatch: %x -> %x", data, enc[4:])
		}
		// Payload parsers must never panic, whatever the bytes.
		switch fr.kind {
		case frameWrite:
			if k, v, err := parseWritePayload(fr.payload); err == nil {
				if enc := encodeWritePayload(k, v); !bytes.Equal(enc, fr.payload) {
					t.Fatalf("write payload re-encode mismatch: %x -> %x", fr.payload, enc)
				}
			}
		case frameErr:
			if code, msg, err := parseErrPayload(fr.payload); err == nil {
				if enc := encodeErrPayload(code, msg); !bytes.Equal(enc, fr.payload) {
					t.Fatalf("err payload re-encode mismatch: %x -> %x", fr.payload, enc)
				}
			}
		case frameOK:
			parseReadOKPayload(fr.payload)
		}
	})
}
