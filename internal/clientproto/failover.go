package clientproto

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"obladi/internal/core"
	"obladi/internal/kvtxn"
)

// FailoverConfig tunes the failover-aware mux dialer.
type FailoverConfig struct {
	// Addrs lists the client endpoints of the primary and its standbys, in
	// preference order. Required.
	Addrs []string
	// DialTimeout bounds one connection attempt. Default 500ms.
	DialTimeout time.Duration
	// BackoffMin/BackoffMax bound the exponential redial backoff applied
	// between full sweeps of the address list. Defaults 25ms / 1s.
	BackoffMin, BackoffMax time.Duration
	// MaxWait bounds the total time a Begin will spend redialing before
	// giving up; it should comfortably exceed the standby's lease timeout
	// so clients ride out a failover. Default 15s.
	MaxWait time.Duration
}

func (c *FailoverConfig) setDefaults() error {
	if len(c.Addrs) == 0 {
		return errors.New("clientproto: FailoverConfig.Addrs required")
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 500 * time.Millisecond
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = time.Second
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 15 * time.Second
	}
	return nil
}

// FailoverClient is a MuxClient facade over an address list: it keeps one
// live connection, and when that connection dies it redials across the list
// with bounded exponential backoff until a proxy (the old primary restarted,
// or a promoted standby) accepts. Transactions are session-scoped, so there
// is no mid-transaction migration: an in-flight transaction on a dead
// connection fails with a retryable abort (ErrConnLost wrapping
// kvtxn.ErrAborted) and the caller's retry loop replays it on the next
// Begin, which transparently lands on the new connection. A commit whose
// decision was lost fails with ErrCommitUnknown and is deliberately NOT
// retryable — that is the at-most-once half of the failover contract.
type FailoverClient struct {
	cfg FailoverConfig

	mu     sync.Mutex
	cur    *MuxClient
	closed bool

	// Shed pacing: when the primary is overloaded (not dead) it answers
	// with retryable sheds, and a retry loop that replays immediately turns
	// one saturated epoch into a retry storm that keeps it saturated.
	// noteShed arms a jittered, exponentially-growing pause that the next
	// Begin serves out; noteOK disarms it. Guarded by shedMu (not mu: a
	// paced Begin must not block connection management).
	shedMu      sync.Mutex
	shedBackoff time.Duration
	shedUntil   time.Time
}

// noteShed records a server load-shed: the next Begin waits out a jittered
// backoff that doubles with consecutive sheds (BackoffMin..BackoffMax).
func (fc *FailoverClient) noteShed() {
	fc.shedMu.Lock()
	defer fc.shedMu.Unlock()
	if fc.shedBackoff == 0 {
		fc.shedBackoff = fc.cfg.BackoffMin
	} else if fc.shedBackoff *= 2; fc.shedBackoff > fc.cfg.BackoffMax {
		fc.shedBackoff = fc.cfg.BackoffMax
	}
	fc.shedUntil = time.Now().Add(jitter(fc.shedBackoff))
}

// noteOK records a successfully-settled transaction, disarming shed pacing.
func (fc *FailoverClient) noteOK() {
	fc.shedMu.Lock()
	fc.shedBackoff = 0
	fc.shedUntil = time.Time{}
	fc.shedMu.Unlock()
}

// shedWait serves out any armed shed backoff (or returns early when ctx
// ends; the caller's Begin then carries ctx's cancellation anyway).
func (fc *FailoverClient) shedWait(ctx context.Context) {
	fc.shedMu.Lock()
	until := fc.shedUntil
	fc.shedMu.Unlock()
	d := time.Until(until)
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// jitter spreads d over [d/2, d): synchronized clients that all shed on the
// same saturated epoch must not all retry on the same later one.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(half)
}

// DialMuxFailover connects to the first reachable address and returns the
// failover client. The initial dial follows the same backoff/MaxWait policy
// as post-failure redials, so a client started during a failover window
// simply waits for promotion.
func DialMuxFailover(cfg FailoverConfig) (*FailoverClient, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	fc := &FailoverClient{cfg: cfg}
	if _, err := fc.client(); err != nil {
		return nil, err
	}
	return fc, nil
}

// client returns the live connection, redialing if it is lost.
func (fc *FailoverClient) client() (*MuxClient, error) {
	backoff := fc.cfg.BackoffMin
	deadline := time.Now().Add(fc.cfg.MaxWait)
	var lastErr error
	for {
		fc.mu.Lock()
		if fc.closed {
			fc.mu.Unlock()
			return nil, errors.New("clientproto: failover client closed")
		}
		if fc.cur != nil && !fc.cur.Lost() {
			c := fc.cur
			fc.mu.Unlock()
			return c, nil
		}
		fc.mu.Unlock()

		for _, addr := range fc.cfg.Addrs {
			c, err := dialMuxTimeout(addr, fc.cfg.DialTimeout)
			if err != nil {
				lastErr = err
				continue
			}
			fc.mu.Lock()
			if fc.closed {
				fc.mu.Unlock()
				c.Close()
				return nil, errors.New("clientproto: failover client closed")
			}
			if fc.cur != nil && !fc.cur.Lost() {
				// A concurrent Begin won the redial race; use its connection.
				cur := fc.cur
				fc.mu.Unlock()
				c.Close()
				return cur, nil
			}
			fc.cur = c
			fc.mu.Unlock()
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("clientproto: no proxy reachable within %v (last: %w)", fc.cfg.MaxWait, lastErr)
		}
		// Jittered: a fleet of clients orphaned by the same failover must
		// not sweep the address list in lockstep.
		time.Sleep(jitter(backoff))
		if backoff *= 2; backoff > fc.cfg.BackoffMax {
			backoff = fc.cfg.BackoffMax
		}
	}
}

// Begin opens a transaction on the live connection (redialing first if
// needed). A dial failure surfaces on the transaction's operations.
func (fc *FailoverClient) Begin() *MuxTxn { return fc.BeginCtx(context.Background()) }

// BeginCtx is Begin with a context.
func (fc *FailoverClient) BeginCtx(ctx context.Context) *MuxTxn {
	c, err := fc.client()
	if err != nil {
		if ctx == nil {
			ctx = context.Background()
		}
		// A txn whose sends all fail with the dial error: operations and
		// Commit surface it, and it is not "session settled" — the caller
		// sees the real reason redialing gave up.
		return &MuxTxn{ctx: ctx, sendErr: err}
	}
	return c.BeginCtx(ctx)
}

// Lost reports whether the client currently holds no live connection (the
// next Begin will redial across the address list).
func (fc *FailoverClient) Lost() bool {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.cur == nil || fc.cur.Lost()
}

// Close closes the live connection and stops redialing.
func (fc *FailoverClient) Close() error {
	fc.mu.Lock()
	fc.closed = true
	c := fc.cur
	fc.cur = nil
	fc.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// FailoverDB adapts a FailoverClient to kvtxn.DB so workload suites run
// unchanged across a failover. It also carries the shed-pacing half of
// overload control: a transaction that dies with a load-shed (core.ErrShed
// across the wire) arms a jittered backoff that the next Begin waits out, so
// generic retry loops — which see sheds as ordinary retryable aborts — pace
// themselves instead of hammering a saturated proxy.
type FailoverDB struct {
	C *FailoverClient
}

var (
	_ kvtxn.DB    = FailoverDB{}
	_ kvtxn.CtxDB = FailoverDB{}
)

// Begin implements kvtxn.DB.
func (d FailoverDB) Begin() kvtxn.Txn { return d.BeginCtx(context.Background()) }

// BeginCtx implements kvtxn.CtxDB.
func (d FailoverDB) BeginCtx(ctx context.Context) kvtxn.Txn {
	if ctx == nil {
		ctx = context.Background()
	}
	d.C.shedWait(ctx)
	return &pacedTxn{t: d.C.BeginCtx(ctx), fc: d.C}
}

// Close implements kvtxn.DB.
func (d FailoverDB) Close() error { return d.C.Close() }

// pacedTxn observes a transaction's outcome for shed pacing: sheds arm the
// client's backoff, a clean settle disarms it. Everything else passes
// through to the underlying MuxTxn, including read pipelining.
type pacedTxn struct {
	t  *MuxTxn
	fc *FailoverClient
}

var _ kvtxn.AsyncTxn = (*pacedTxn)(nil)

// observe routes a settled outcome into the pacing state.
func (p *pacedTxn) observe(err error) error {
	switch {
	case err == nil:
		p.fc.noteOK()
	case errors.Is(err, core.ErrShed):
		p.fc.noteShed()
	}
	return err
}

func (p *pacedTxn) Read(key string) ([]byte, bool, error) {
	v, found, err := p.t.Read(key)
	if err != nil && errors.Is(err, core.ErrShed) {
		p.fc.noteShed()
	}
	return v, found, err
}

// ReadAsync implements kvtxn.AsyncTxn.
func (p *pacedTxn) ReadAsync(key string) kvtxn.ReadFuture {
	return pacedFuture{f: p.t.ReadAsync(key), fc: p.fc}
}

type pacedFuture struct {
	f  kvtxn.ReadFuture
	fc *FailoverClient
}

func (pf pacedFuture) Wait(ctx context.Context) ([]byte, bool, error) {
	v, found, err := pf.f.Wait(ctx)
	if err != nil && errors.Is(err, core.ErrShed) {
		pf.fc.noteShed()
	}
	return v, found, err
}

func (p *pacedTxn) ReadMany(keys []string) ([]kvtxn.Value, error) {
	out, err := p.t.ReadMany(keys)
	if err != nil && errors.Is(err, core.ErrShed) {
		p.fc.noteShed()
	}
	return out, err
}

func (p *pacedTxn) Write(key string, value []byte) error { return p.t.Write(key, value) }

func (p *pacedTxn) Delete(key string) error { return p.t.Delete(key) }

func (p *pacedTxn) Commit() error { return p.observe(p.t.Commit()) }

func (p *pacedTxn) Abort() { p.t.Abort() }
