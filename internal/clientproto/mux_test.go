package clientproto_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"obladi/internal/clientproto"
	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/enginetest"
	"obladi/internal/kvtxn"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// newMuxStack serves an auto-mode Obladi engine and dials a mux client.
func newMuxStack(t *testing.T, shards int) *clientproto.MuxClient {
	t.Helper()
	srv := newServer(t, shards)
	mc, err := clientproto.DialMux(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mc.Close() })
	return mc
}

func TestMuxRoundTrip(t *testing.T) {
	mc := newMuxStack(t, 1)
	db := clientproto.MuxDB{C: mc}
	err := kvtxn.RunWithRetries(db, 10, func(tx kvtxn.Txn) error {
		if err := tx.Write("hello", []byte("world")); err != nil {
			return err
		}
		v, found, err := tx.Read("hello")
		if err != nil {
			return err
		}
		if !found || string(v) != "world" {
			t.Fatalf("read own write: %q %v", v, found)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = kvtxn.RunWithRetries(db, 10, func(tx kvtxn.Txn) error {
		v, found, err := tx.Read("hello")
		if err != nil {
			return err
		}
		if !found || string(v) != "world" {
			return fmt.Errorf("read after commit: %q %v", v, found)
		}
		_, found, err = tx.Read("absent")
		if err != nil {
			return err
		}
		if found {
			t.Fatal("absent key found")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMuxShardedStack drives the mux protocol against a 4-shard proxy.
func TestMuxShardedStack(t *testing.T) {
	mc := newMuxStack(t, 4)
	db := clientproto.MuxDB{C: mc}
	err := kvtxn.RunWithRetries(db, 10, func(tx kvtxn.Txn) error {
		for i := 0; i < 16; i++ {
			if err := tx.Write(fmt.Sprintf("mux-shard-%d", i), []byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// ReadMany pipelines all keys into one batch round per shard.
	err = kvtxn.RunWithRetries(db, 10, func(tx kvtxn.Txn) error {
		keys := make([]string, 16)
		for i := range keys {
			keys[i] = fmt.Sprintf("mux-shard-%d", i)
		}
		res, err := tx.ReadMany(keys)
		if err != nil {
			return err
		}
		for i, r := range res {
			if !r.Found || len(r.Value) != 1 || r.Value[0] != byte(i) {
				t.Fatalf("%s: %v %v", r.Key, r.Value, r.Found)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMuxPipelinedReadsShareOneBatch serves a *manual-mode* proxy so the
// test drives the schedule: a session's pipelined read set must be served by
// a single read batch, and a pipelined commit by the following boundary.
func TestMuxPipelinedReadsShareOneBatch(t *testing.T) {
	params := ringoram.Params{
		NumBlocks: 256, Z: 8, S: 12, A: 8,
		KeySize: 32, ValueSize: 64, Seed: 1,
	}
	store := storage.NewMemBackend(params.Geometry().NumBuckets)
	p, err := core.New(store, core.Config{
		Params: params, Key: cryptoutil.KeyFromSeed([]byte("mux-manual")),
		ReadBatches: 4, ReadBatchSize: 16, WriteBatchSize: 16,
		DisableDurability: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv, err := clientproto.NewServer(kvtxn.ProxyDB{P: p}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	mc, err := clientproto.DialMux(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	// Pipeline eight reads and the commit without waiting for any reply.
	tx := mc.Begin()
	futures := make([]kvtxn.ReadFuture, 8)
	for i := range futures {
		futures[i] = tx.ReadAsync(fmt.Sprintf("pipe-%d", i))
	}
	commitDone := make(chan error, 1)
	go func() { commitDone <- tx.Commit() }()

	// Wait until all eight reads are queued server-side, then fire exactly
	// one batch.
	deadline := time.Now().Add(5 * time.Second)
	for p.PendingFetches() < 8 {
		if time.Now().After(deadline) {
			t.Fatalf("reads never queued: pending=%d", p.PendingFetches())
		}
		time.Sleep(time.Millisecond)
	}
	if err := p.StepReadBatch(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futures {
		v, found, err := f.Wait(nil)
		if err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
		if found {
			t.Fatalf("future %d: unexpected value %q", i, v)
		}
	}
	// The commit decision arrives at the next boundary.
	select {
	case err := <-commitDone:
		t.Fatalf("commit decided before the boundary: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	for i := 0; i < 3; i++ {
		if err := p.StepReadBatch(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.EndEpoch(); err != nil {
		t.Fatal(err)
	}
	if err := <-commitDone; err != nil {
		t.Fatal(err)
	}
}

// TestMuxAndLineShareOneServer runs a legacy line client and a mux client
// against the same listener: the auto-detect must route both.
func TestMuxAndLineShareOneServer(t *testing.T) {
	srv := newServer(t, 1)
	line, err := clientproto.DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer line.Close()
	mc, err := clientproto.DialMux(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	db := clientproto.MuxDB{C: mc}

	if err := kvtxn.RunWithRetries(db, 10, func(tx kvtxn.Txn) error {
		return tx.Write("shared", []byte("via-mux"))
	}); err != nil {
		t.Fatal(err)
	}
	// The line client reads what the mux client wrote.
	var got []byte
	for attempt := 0; attempt < 10; attempt++ {
		if err := line.Begin(); err != nil {
			t.Fatal(err)
		}
		v, found, err := line.Read("shared")
		if err != nil {
			line.Abort()
			continue
		}
		if !found {
			t.Fatal("line client: key missing")
		}
		got = v
		line.Abort()
		break
	}
	if string(got) != "via-mux" {
		t.Fatalf("line client read %q", got)
	}
}

// TestMuxSessionProtocolErrors speaks raw frames: ops on unopened sessions
// and double BEGINs get error replies without desyncing the connection.
func TestMuxSessionProtocolErrors(t *testing.T) {
	srv := newServer(t, 1)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("\x00OB2")); err != nil {
		t.Fatal(err)
	}
	send := func(kind byte, session, req uint32, payload []byte) {
		t.Helper()
		buf := make([]byte, 0, 13+len(payload))
		buf = binary.BigEndian.AppendUint32(buf, uint32(9+len(payload)))
		buf = append(buf, kind)
		buf = binary.BigEndian.AppendUint32(buf, session)
		buf = binary.BigEndian.AppendUint32(buf, req)
		buf = append(buf, payload...)
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() (kind byte, session, req uint32, payload []byte) {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		hdr := make([]byte, 4)
		if _, err := io.ReadFull(conn, hdr); err != nil {
			t.Fatal(err)
		}
		body := make([]byte, binary.BigEndian.Uint32(hdr))
		if _, err := io.ReadFull(conn, body); err != nil {
			t.Fatal(err)
		}
		return body[0], binary.BigEndian.Uint32(body[1:5]), binary.BigEndian.Uint32(body[5:9]), body[9:]
	}
	const (
		kindBegin = 1
		kindRead  = 2
		kindAbort = 6
		kindOK    = 0x80
		kindErr   = 0x81
	)
	// READ on a session that was never opened.
	send(kindRead, 42, 1, []byte("k"))
	if kind, session, req, payload := recv(); kind != kindErr || session != 42 || req != 1 {
		t.Fatalf("unopened session read: kind=%#x session=%d req=%d %q", kind, session, req, payload)
	}
	// Open, then double-open.
	send(kindBegin, 7, 1, nil)
	if kind, _, _, _ := recv(); kind != kindOK {
		t.Fatalf("begin: kind=%#x", kind)
	}
	send(kindBegin, 7, 2, nil)
	if kind, _, _, payload := recv(); kind != kindErr {
		t.Fatalf("double begin: kind=%#x %q", kind, payload)
	}
	// The connection still works: abort the session cleanly.
	send(kindAbort, 7, 3, nil)
	if kind, _, req, _ := recv(); kind != kindOK || req != 3 {
		t.Fatalf("abort after errors: kind=%#x req=%d", kind, req)
	}
}

// TestMuxManyConcurrentSessions runs many concurrent transaction sessions
// over ONE connection, mixing reads and writes, and verifies every committed
// value — the multiplexing the line protocol fundamentally cannot do.
func TestMuxManyConcurrentSessions(t *testing.T) {
	mc := newMuxStack(t, 1)
	db := clientproto.MuxDB{C: mc}
	const workers = 24
	const txnsPer = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPer; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				err := kvtxn.RunWithRetries(db, 20, func(tx kvtxn.Txn) error {
					return tx.Write(key, []byte(key))
				})
				if err != nil {
					errs <- fmt.Errorf("%s: %w", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Verify a sample of keys.
	for _, key := range []string{"w0-k0", "w11-k3", "w23-k1"} {
		err := kvtxn.RunWithRetries(db, 20, func(tx kvtxn.Txn) error {
			v, found, err := tx.Read(key)
			if err != nil {
				return err
			}
			if !found || string(v) != key {
				t.Fatalf("%s: %q %v", key, v, found)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestMuxStressServerClose is the -race stress for the v2 session machinery:
// many concurrent sessions on one connection, with the server torn down
// mid-flight. Every client call must return (no stranded futures), and the
// engine must shut down cleanly afterwards (no stranded server workers).
func TestMuxStressServerClose(t *testing.T) {
	eng, err := enginetest.NewObladi(enginetest.ObladiOptions{NumBlocks: 512, ValueSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := clientproto.NewServer(eng.DB, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mc, err := clientproto.DialMux(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	db := clientproto.MuxDB{C: mc}

	const workers = 32
	var committed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				tx := db.Begin()
				key := fmt.Sprintf("stress-%d-%d", w, i%8)
				if err := tx.Write(key, []byte("v")); err != nil {
					tx.Abort()
					return
				}
				if _, _, err := tx.Read(key); err != nil {
					tx.Abort()
					if errors.Is(err, kvtxn.ErrAborted) {
						continue // epoch boundary; retry
					}
					return // connection down: stop
				}
				if err := tx.Commit(); err != nil {
					if errors.Is(err, kvtxn.ErrAborted) {
						continue
					}
					return
				}
				committed.Add(1)
			}
		}(w)
	}

	// Let traffic build, then kill the server mid-flight.
	time.Sleep(100 * time.Millisecond)
	srv.Close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("client workers stranded after server close")
	}
	mc.Close()
	if err := eng.DB.Close(); err != nil {
		t.Fatal(err)
	}
	if v := eng.Violation(); v != nil {
		t.Fatal(v)
	}
	t.Logf("committed %d transactions before the close", committed.Load())
}
