package clientproto

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// The v2 client protocol is a length-prefixed binary framing that multiplexes
// many concurrent transaction sessions over one TCP connection (the framing
// idiom of storage/remote.go, one layer up). A client opens the stream with a
// 4-byte magic whose first byte is NUL — no line-protocol command starts with
// NUL, which is what lets the server auto-detect the protocol from the first
// byte and keep serving legacy line clients on the same port.
//
//	magic: 0x00 'O' 'B' '2'
//	frame: len(u32) | kind(u8) | session(u32) | reqID(u32) | payload
//
// len counts everything after the length field itself (kind, session, reqID,
// payload). Sessions are client-allocated identifiers, unique per connection
// for its lifetime; request IDs are client-allocated, unique per session.
// Each request frame is answered by exactly one reply frame echoing its
// session and request ID. Requests of one session execute in wire order;
// replies stream back in completion order — a read's reply lands when its
// batch executes, so replies of different sessions (and a session's write
// acks versus its read results) interleave freely.
//
// Request kinds and payloads:
//
//	frameBegin   —                       open the session
//	frameRead    — key bytes             register a read
//	frameWrite   — klen(u32) key value   write key
//	frameDelete  — key bytes             delete key
//	frameCommit  —                       commit and close the session
//	frameAbort   —                       abort and close the session
//
// Reply kinds and payloads:
//
//	frameOK  — read: found(u8) value; others: empty
//	frameErr — code(u8) message; code 1 marks a retryable transaction abort,
//	           code 2 a load-shed (retryable after backing off ~one epoch)
const muxMagic = "\x00OB2"

type frameKind uint8

// Frame kinds. Requests count up from 1; replies have the high bit set.
const (
	frameBegin frameKind = iota + 1
	frameRead
	frameWrite
	frameDelete
	frameCommit
	frameAbort

	frameOK  frameKind = 0x80
	frameErr frameKind = 0x81
)

// Error codes carried by frameErr payloads.
const (
	errCodeGeneric uint8 = 0
	errCodeAborted uint8 = 1 // transaction aborted; retrying is appropriate
	// errCodeShed marks a load-shed: the server refused the operation
	// because it is saturated (admission gate or session cap), not because
	// the transaction conflicted. Retryable like errCodeAborted, but the
	// client should back off roughly an epoch first instead of retrying hot.
	errCodeShed uint8 = 2
)

// muxMaxFrame bounds a single frame; generous for any key/value the proxy
// accepts, and small enough that a corrupt length prefix cannot balloon
// allocation.
const muxMaxFrame = 16 << 20

// frameHeaderLen is the encoded size of kind+session+reqID.
const frameHeaderLen = 9

// frame is one decoded protocol frame. A frame read off the wire borrows its
// payload from a pooled buffer: whoever consumes the frame calls release once
// every alias of the payload is dead (values that outlive the frame — an
// engine-retained write value, a future's read result — are copied first).
type frame struct {
	kind    frameKind
	session uint32
	req     uint32
	payload []byte
	buf     *frameBuf
}

// release returns the frame's pooled buffer. Safe on frames without one
// (locally built frames, zero frames); idempotent per frame value.
func (f *frame) release() {
	if f.buf != nil {
		frameBufPool.Put(f.buf)
		f.buf = nil
		f.payload = nil
	}
}

// frameBuf is a pooled frame body, recycled across reads so the steady-state
// read path performs no per-frame allocation.
type frameBuf struct{ b []byte }

var frameBufPool = sync.Pool{New: func() any { return new(frameBuf) }}

var errShortFrame = errors.New("clientproto: short frame")

// decodeFrame parses a frame body (everything after the length prefix). The
// returned payload aliases b.
func decodeFrame(b []byte) (frame, error) {
	if len(b) < frameHeaderLen {
		return frame{}, errShortFrame
	}
	return frame{
		kind:    frameKind(b[0]),
		session: binary.BigEndian.Uint32(b[1:5]),
		req:     binary.BigEndian.Uint32(b[5:9]),
		payload: b[frameHeaderLen:],
	}, nil
}

// appendFrame appends f's wire encoding (length prefix included) to dst.
func appendFrame(dst []byte, f frame) []byte {
	return appendFrame2(dst, f.kind, f.session, f.req, f.payload, nil)
}

// appendFrame2 appends a frame whose payload is the concatenation of two
// segments, so callers can prepend a status byte to a borrowed value slice
// without building an intermediate payload.
func appendFrame2(dst []byte, kind frameKind, session, req uint32, p1, p2 []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(frameHeaderLen+len(p1)+len(p2)))
	dst = append(dst, byte(kind))
	dst = binary.BigEndian.AppendUint32(dst, session)
	dst = binary.BigEndian.AppendUint32(dst, req)
	dst = append(dst, p1...)
	return append(dst, p2...)
}

// readMuxFrame reads and decodes one frame into a pooled buffer: the length
// prefix is peeked out of the bufio window (no scratch copy) and the body
// lands in a recycled frameBuf the returned frame aliases. The caller owns
// the frame and must release it.
func readMuxFrame(r *bufio.Reader) (frame, error) {
	prefix, err := r.Peek(4)
	if err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(prefix)
	if n > muxMaxFrame {
		return frame{}, fmt.Errorf("clientproto: frame of %d bytes exceeds limit", n)
	}
	if _, err := r.Discard(4); err != nil {
		return frame{}, err
	}
	buf := frameBufPool.Get().(*frameBuf)
	if cap(buf.b) < int(n) {
		buf.b = make([]byte, n)
	}
	buf.b = buf.b[:n]
	if _, err := io.ReadFull(r, buf.b); err != nil {
		frameBufPool.Put(buf)
		return frame{}, err
	}
	f, err := decodeFrame(buf.b)
	if err != nil {
		frameBufPool.Put(buf)
		return frame{}, err
	}
	f.buf = buf
	return f, nil
}

// encodeWritePayload builds a frameWrite payload: klen(u32) | key | value.
func encodeWritePayload(key string, value []byte) []byte {
	p := make([]byte, 0, 4+len(key)+len(value))
	p = binary.BigEndian.AppendUint32(p, uint32(len(key)))
	p = append(p, key...)
	return append(p, value...)
}

// parseWritePayload is encodeWritePayload's inverse. The returned value
// aliases p.
func parseWritePayload(p []byte) (key string, value []byte, err error) {
	if len(p) < 4 {
		return "", nil, errShortFrame
	}
	klen := int(binary.BigEndian.Uint32(p))
	if klen < 0 || len(p)-4 < klen {
		return "", nil, errShortFrame
	}
	return string(p[4 : 4+klen]), p[4+klen:], nil
}

// encodeErrPayload builds a frameErr payload.
func encodeErrPayload(code uint8, msg string) []byte {
	p := make([]byte, 0, 1+len(msg))
	p = append(p, code)
	return append(p, msg...)
}

// parseErrPayload is encodeErrPayload's inverse.
func parseErrPayload(p []byte) (code uint8, msg string, err error) {
	if len(p) < 1 {
		return 0, "", errShortFrame
	}
	return p[0], string(p[1:]), nil
}

// encodeReadOKPayload builds a read reply payload: found(u8) | value.
func encodeReadOKPayload(value []byte, found bool) []byte {
	p := make([]byte, 0, 1+len(value))
	if found {
		p = append(p, 1)
	} else {
		p = append(p, 0)
	}
	return append(p, value...)
}

// parseReadOKPayload is encodeReadOKPayload's inverse. The returned value
// aliases p.
func parseReadOKPayload(p []byte) (value []byte, found bool, err error) {
	if len(p) < 1 {
		return nil, false, errShortFrame
	}
	if p[0] == 0 {
		return nil, false, nil
	}
	return p[1:], true, nil
}
