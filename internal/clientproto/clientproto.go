// Package clientproto implements the wire protocols between on-site
// application clients and the Obladi proxy (cmd/obladi-proxy). Two protocols
// share one port, distinguished by the connection's first byte:
//
// The v2 protocol (DialMux/MuxClient) is a length-prefixed binary framing
// that multiplexes many concurrent transaction sessions over one connection
// and pipelines requests without waiting for replies; it opens with a
// NUL-led magic. See frame.go for the frame format and mux.go/muxclient.go
// for the server and client halves.
//
// The legacy line protocol carries one transaction session at a time per
// connection, one synchronous round trip per command:
//
//	BEGIN                     -> OK
//	READ <key>                -> OK <hex-value> | OK NONE
//	WRITE <key> <hex-value>   -> OK
//	DELETE <key>              -> OK
//	COMMIT                    -> OK          (durably committed)
//	ABORT                     -> OK
//
// Errors answer ERR <message>; a transaction-fatal error (abort) also closes
// the session's transaction. No line-protocol command starts with a NUL
// byte, which is what makes the first-byte auto-detect unambiguous.
package clientproto

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"obladi/internal/kvtxn"
)

// ServerOptions bounds a server's per-connection resources. The zero value
// selects the defaults; both knobs exist because an overloaded (or buggy, or
// adversarial) client must be able to cost the proxy only a bounded amount
// of memory and goroutines, whatever it sends.
type ServerOptions struct {
	// MaxSessionsPerConn caps concurrently open mux sessions on one
	// connection; a Begin past the cap is refused with a shed reply
	// (retryable after earlier sessions settle). Default 16384.
	MaxSessionsPerConn int
	// MaxPendingReadsPerSession caps a session's concurrently-resolving
	// read futures. A session pipelining reads faster than batches serve
	// them blocks its worker at the cap, which backpressures the
	// connection's read loop through the bounded op queue — instead of
	// spawning an unbounded resolver goroutine per read. Default 64.
	MaxPendingReadsPerSession int
}

func (o *ServerOptions) setDefaults() {
	if o.MaxSessionsPerConn <= 0 {
		o.MaxSessionsPerConn = 16384
	}
	if o.MaxPendingReadsPerSession <= 0 {
		o.MaxPendingReadsPerSession = 64
	}
}

// ServerStats is a snapshot of the wire server's overload counters.
type ServerStats struct {
	// OpenSessions is the current count of open mux sessions over all
	// connections.
	OpenSessions int64
	// ShedSessions counts Begins refused by the per-connection session cap.
	ShedSessions uint64
}

// Server serves both client protocols over a kvtxn.DB, auto-detecting per
// connection.
type Server struct {
	db  kvtxn.DB
	ln  net.Listener
	wg  sync.WaitGroup
	opt ServerOptions

	// Overload counters, atomic: sessions update them from every
	// connection's read loop and Stats snapshots them concurrently.
	openSessions atomic.Int64
	shedSessions atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
}

// NewServer starts listening on addr with default ServerOptions.
func NewServer(db kvtxn.DB, addr string) (*Server, error) {
	return NewServerOpts(db, addr, ServerOptions{})
}

// NewServerOpts starts listening on addr with explicit resource bounds.
func NewServerOpts(db kvtxn.DB, addr string, opt ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("clientproto: listen: %w", err)
	}
	return NewServerListenerOpts(db, ln, opt), nil
}

// NewServerListener serves on an already-bound listener. A standby proxy
// uses this to claim its client port the moment it starts — connections made
// before promotion wait in the listener's accept queue and are served once
// the promoted standby starts accepting — so clients' failover address lists
// stay static and a dial into the failover window costs latency, not errors.
func NewServerListener(db kvtxn.DB, ln net.Listener) *Server {
	return NewServerListenerOpts(db, ln, ServerOptions{})
}

// NewServerListenerOpts is NewServerListener with explicit resource bounds.
func NewServerListenerOpts(db kvtxn.DB, ln net.Listener, opt ServerOptions) *Server {
	opt.setDefaults()
	s := &Server{db: db, ln: ln, opt: opt, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Stats returns a snapshot of the server's overload counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		OpenSessions: s.openSessions.Load(),
		ShedSessions: s.shedSessions.Load(),
	}
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every client connection, and waits for their
// sessions to wind down (open transactions abort).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serve(conn)
		}()
	}
}

// serve sniffs the connection's first byte and dispatches to the v2
// multiplexed protocol (NUL magic) or the legacy line protocol.
func (s *Server) serve(conn net.Conn) {
	r := bufio.NewReader(conn)
	first, err := r.Peek(1)
	if err != nil {
		conn.Close()
		return
	}
	if first[0] == muxMagic[0] {
		magic := make([]byte, len(muxMagic))
		if _, err := io.ReadFull(r, magic); err != nil || string(magic) != muxMagic {
			conn.Close()
			return
		}
		s.serveMux(conn, r)
		return
	}
	s.serveLine(conn, r)
}

// oneLine flattens an error message onto a single line: wrapped aborts carry
// errors.Join chains whose Error() contains newlines, which would split one
// protocol reply into several and desynchronize the session.
func oneLine(err error) string {
	return strings.ReplaceAll(err.Error(), "\n", "; ")
}

// serveLine handles one legacy line-protocol session.
func (s *Server) serveLine(conn net.Conn, r *bufio.Reader) {
	defer conn.Close()
	sc := bufio.NewScanner(r)
	w := bufio.NewWriter(conn)
	var tx kvtxn.Txn
	defer func() {
		if tx != nil {
			tx.Abort()
		}
	}()
	reply := func(format string, args ...interface{}) bool {
		if _, err := fmt.Fprintf(w, format+"\n", args...); err != nil {
			return false
		}
		return w.Flush() == nil
	}
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		ok := true
		switch cmd := strings.ToUpper(fields[0]); {
		case cmd == "BEGIN":
			if tx != nil {
				ok = reply("ERR transaction already open")
				break
			}
			tx = s.db.Begin()
			ok = reply("OK")
		case tx == nil:
			ok = reply("ERR no transaction (BEGIN first)")
		case cmd == "READ" && len(fields) == 2:
			v, found, err := tx.Read(fields[1])
			switch {
			case err != nil:
				tx.Abort()
				tx = nil
				ok = reply("ERR %v", oneLine(err))
			case !found:
				ok = reply("OK NONE")
			default:
				ok = reply("OK %s", hex.EncodeToString(v))
			}
		case cmd == "WRITE" && len(fields) == 3:
			v, err := hex.DecodeString(fields[2])
			if err != nil {
				ok = reply("ERR bad hex value")
				break
			}
			if err := tx.Write(fields[1], v); err != nil {
				tx.Abort()
				tx = nil
				ok = reply("ERR %v", oneLine(err))
				break
			}
			ok = reply("OK")
		case cmd == "DELETE" && len(fields) == 2:
			if err := tx.Delete(fields[1]); err != nil {
				tx.Abort()
				tx = nil
				ok = reply("ERR %v", oneLine(err))
				break
			}
			ok = reply("OK")
		case cmd == "COMMIT":
			err := tx.Commit()
			tx = nil
			if err != nil {
				ok = reply("ERR %v", oneLine(err))
			} else {
				ok = reply("OK")
			}
		case cmd == "ABORT":
			tx.Abort()
			tx = nil
			ok = reply("OK")
		default:
			ok = reply("ERR unknown command %q", fields[0])
		}
		if !ok {
			return
		}
	}
}

// Client is a convenience client for the line protocol (used by tests and
// tools; applications embed the library instead).
type Client struct {
	conn net.Conn
	r    *bufio.Reader
}

// DialClient connects to a proxy server.
func DialClient(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one command line and parses the reply.
func (c *Client) roundTrip(line string) (string, error) {
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		return "", err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	resp = strings.TrimSpace(resp)
	if strings.HasPrefix(resp, "ERR ") {
		return "", fmt.Errorf("clientproto: %s", resp[4:])
	}
	if resp == "OK" {
		return "", nil
	}
	if strings.HasPrefix(resp, "OK ") {
		return resp[3:], nil
	}
	return "", fmt.Errorf("clientproto: malformed reply %q", resp)
}

// Begin starts a transaction on this connection.
func (c *Client) Begin() error {
	_, err := c.roundTrip("BEGIN")
	return err
}

// Read fetches a key.
func (c *Client) Read(key string) ([]byte, bool, error) {
	resp, err := c.roundTrip("READ " + key)
	if err != nil {
		return nil, false, err
	}
	if resp == "NONE" {
		return nil, false, nil
	}
	v, err := hex.DecodeString(resp)
	return v, err == nil, err
}

// Write stores a key.
func (c *Client) Write(key string, value []byte) error {
	_, err := c.roundTrip(fmt.Sprintf("WRITE %s %s", key, hex.EncodeToString(value)))
	return err
}

// Delete removes a key.
func (c *Client) Delete(key string) error {
	_, err := c.roundTrip("DELETE " + key)
	return err
}

// Commit commits the open transaction.
func (c *Client) Commit() error {
	_, err := c.roundTrip("COMMIT")
	return err
}

// Abort aborts the open transaction.
func (c *Client) Abort() error {
	_, err := c.roundTrip("ABORT")
	return err
}
