package clientproto_test

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"obladi/internal/clientproto"
	"obladi/internal/enginetest"
)

// newStack builds a full stack: Obladi proxy over checked storage, served
// through the client protocol.
func newStack(t *testing.T) *clientproto.Client {
	return newShardedStack(t, 1)
}

// newServer builds the protocol server over a fresh Obladi engine.
func newServer(t *testing.T, shards int) *clientproto.Server {
	t.Helper()
	eng, err := enginetest.NewObladi(enginetest.ObladiOptions{NumBlocks: 256, ValueSize: 64, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := clientproto.NewServer(eng.DB, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.DB.Close()
		if v := eng.Violation(); v != nil {
			t.Error(v)
		}
	})
	return srv
}

// newShardedStack is newStack over a hash-partitioned proxy.
func newShardedStack(t *testing.T, shards int) *clientproto.Client {
	t.Helper()
	srv := newServer(t, shards)
	c, err := clientproto.DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// rawLineConn dials the server and speaks the line protocol by hand, for
// tests that need to send malformed commands the Client cannot produce.
type rawLineConn struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialRawLine(t *testing.T, addr string) *rawLineConn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawLineConn{conn: conn, r: bufio.NewReader(conn)}
}

// roundTrip sends one command line and returns the raw reply line.
func (c *rawLineConn) roundTrip(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	resp, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(resp)
}

// TestProtocolShardedStack drives the full wire protocol against a 4-shard
// proxy: one session's transaction spans every shard.
func TestProtocolShardedStack(t *testing.T) {
	c := newShardedStack(t, 4)
	must(t, c.Begin())
	for i := 0; i < 16; i++ {
		must(t, c.Write(fmt.Sprintf("shard-key-%d", i), []byte{byte(i)}))
	}
	must(t, c.Commit())
	// Dependent reads cost one batch each, so read back one key per
	// transaction rather than all sixteen in one epoch. A read landing on an
	// epoch boundary aborts by fate sharing; retry like a real client.
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("shard-key-%d", i)
		ok := false
		for attempt := 0; attempt < 10 && !ok; attempt++ {
			must(t, c.Begin())
			v, found, err := c.Read(key)
			if err != nil {
				c.Abort()
				continue
			}
			if !found || len(v) != 1 || v[0] != byte(i) {
				t.Fatalf("%s: %v %v", key, v, found)
			}
			must(t, c.Abort())
			ok = true
		}
		if !ok {
			t.Fatalf("%s: aborted on every attempt", key)
		}
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	c := newStack(t)
	must(t, c.Begin())
	must(t, c.Write("hello", []byte("world")))
	v, found, err := c.Read("hello")
	if err != nil || !found || string(v) != "world" {
		t.Fatalf("read own write: %q %v %v", v, found, err)
	}
	must(t, c.Commit())

	must(t, c.Begin())
	v, found, err = c.Read("hello")
	if err != nil || !found || string(v) != "world" {
		t.Fatalf("read after commit: %q %v %v", v, found, err)
	}
	_, found, err = c.Read("absent")
	if err != nil || found {
		t.Fatalf("absent key: %v %v", found, err)
	}
	must(t, c.Delete("hello"))
	must(t, c.Commit())

	must(t, c.Begin())
	_, found, err = c.Read("hello")
	if err != nil || found {
		t.Fatalf("deleted key visible: %v %v", found, err)
	}
	must(t, c.Abort())
}

func TestProtocolErrors(t *testing.T) {
	srv := newServer(t, 1)
	raw := dialRawLine(t, srv.Addr())
	// Command before BEGIN.
	if resp := raw.roundTrip(t, "READ x"); !strings.Contains(resp, "no transaction") {
		t.Fatalf("read without txn: %q", resp)
	}
	if resp := raw.roundTrip(t, "BEGIN"); resp != "OK" {
		t.Fatalf("begin: %q", resp)
	}
	if resp := raw.roundTrip(t, "BEGIN"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("double BEGIN accepted: %q", resp)
	}
	// Bad hex.
	if resp := raw.roundTrip(t, "WRITE k zzzz"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("bad hex accepted: %q", resp)
	}
	// Unknown command.
	if resp := raw.roundTrip(t, "FROB k"); !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("unknown command accepted: %q", resp)
	}
	if resp := raw.roundTrip(t, "ABORT"); resp != "OK" {
		t.Fatalf("abort: %q", resp)
	}
}

func TestProtocolAbortDiscards(t *testing.T) {
	c := newStack(t)
	must(t, c.Begin())
	must(t, c.Write("tmp", []byte("x")))
	must(t, c.Abort())
	must(t, c.Begin())
	_, found, err := c.Read("tmp")
	if err != nil || found {
		t.Fatalf("aborted write visible: %v %v", found, err)
	}
	must(t, c.Abort())
}

func TestProtocolConcurrentSessions(t *testing.T) {
	srv := newServer(t, 1)
	c1, err := clientproto.DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := clientproto.DialClient(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Each session commits with retries: a session that lingers across an
	// epoch boundary without requesting commit aborts by design (epoch
	// fate sharing), so interactive clients always retry.
	commitKV := func(c *clientproto.Client, k, v string) {
		t.Helper()
		for attempt := 0; attempt < 10; attempt++ {
			if err := c.Begin(); err != nil {
				t.Fatal(err)
			}
			if err := c.Write(k, []byte(v)); err != nil {
				continue
			}
			if err := c.Commit(); err == nil {
				return
			}
		}
		t.Fatalf("could not commit %s", k)
	}
	commitKV(c1, "a", "1")
	commitKV(c2, "b", "2")

	// Interactive sessions straddle epochs and may abort; retry as any
	// Obladi client would.
	ok := false
	for attempt := 0; attempt < 10 && !ok; attempt++ {
		if err := c1.Begin(); err != nil {
			continue
		}
		va, _, err := c1.Read("a")
		if err != nil {
			continue // session txn aborted; BEGIN again
		}
		vb, _, err := c1.Read("b")
		if err != nil {
			continue
		}
		if string(va) != "1" || string(vb) != "2" {
			t.Fatalf("a=%q b=%q", va, vb)
		}
		must(t, c1.Abort())
		ok = true
	}
	if !ok {
		t.Fatal("read session aborted on every attempt")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
