package clientproto_test

// Full-stack overload tests: a real Obladi engine behind the mux server,
// driven past its batch-slot budget. They pin the three overload-control
// properties end to end: session caps shed instead of growing state, a
// misbehaving client costs the server only bounded resources, and past
// saturation admitted transactions keep a sane p99 while the excess gets
// retryable sheds — never hangs or wire desyncs.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"obladi/internal/clientproto"
	"obladi/internal/core"
	"obladi/internal/enginetest"
	"obladi/internal/kvtxn"
)

// newServerOpts builds the protocol server with explicit resource bounds
// over a fresh Obladi engine.
func newServerOpts(t *testing.T, engOpt enginetest.ObladiOptions, srvOpt clientproto.ServerOptions) *clientproto.Server {
	t.Helper()
	eng, err := enginetest.NewObladi(engOpt)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := clientproto.NewServerOpts(eng.DB, "127.0.0.1:0", srvOpt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		eng.DB.Close()
		if v := eng.Violation(); v != nil {
			t.Error(v)
		}
	})
	return srv
}

// TestMuxSessionCapSheds pins the per-connection session cap: the Begin past
// the cap is refused with a retryable shed, and settling a session frees its
// slot (the worker map is reaped, not just bounded).
func TestMuxSessionCapSheds(t *testing.T) {
	srv := newServerOpts(t,
		enginetest.ObladiOptions{NumBlocks: 256, ValueSize: 64},
		clientproto.ServerOptions{MaxSessionsPerConn: 4})
	mc, err := clientproto.DialMux(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	open := make([]*clientproto.MuxTxn, 4)
	for i := range open {
		open[i] = mc.Begin()
		// Force the Begin onto the wire and the session open before the
		// next one: a write ack round-trips through the session worker.
		if err := open[i].WriteAsync(fmt.Sprintf("k%d", i), []byte("v")).Wait(context.Background()); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	// The shed answers the Begin frame; Commit collects that pipelined ack.
	over := mc.Begin()
	err = over.Commit()
	if err == nil || !errors.Is(err, core.ErrShed) || !errors.Is(err, kvtxn.ErrAborted) {
		t.Fatalf("5th session on a cap of 4: err = %v, want retryable shed", err)
	}
	if st := srv.Stats(); st.ShedSessions == 0 || st.OpenSessions != 4 {
		t.Fatalf("stats = %+v, want 4 open and >0 shed", st)
	}

	// Settle one session; its slot must come back.
	open[0].Abort()
	waitFor(t, func() bool { return srv.Stats().OpenSessions == 3 })
	tx := mc.Begin()
	if err := tx.WriteAsync("fresh", []byte("v")).Wait(context.Background()); err != nil {
		t.Fatalf("begin after reap: %v", err)
	}
	tx.Abort()
	for _, o := range open[1:] {
		o.Abort()
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

// muxFrame hand-encodes one request frame (for a raw client that bypasses
// MuxClient's read loop).
func muxFrame(kind byte, session, req uint32, payload []byte) []byte {
	b := binary.BigEndian.AppendUint32(nil, uint32(9+len(payload)))
	b = append(b, kind)
	b = binary.BigEndian.AppendUint32(b, session)
	b = binary.BigEndian.AppendUint32(b, req)
	return append(b, payload...)
}

// TestNeverReadingClientBounded pins the OOM audit: a client that opens
// sessions, pipelines reads, and never reads a single reply byte costs the
// server only a bounded number of goroutines (each of which bounds its
// memory), and does not starve well-behaved clients on other connections.
func TestNeverReadingClientBounded(t *testing.T) {
	srv := newServerOpts(t,
		enginetest.ObladiOptions{NumBlocks: 512, ValueSize: 64},
		clientproto.ServerOptions{MaxSessionsPerConn: 8, MaxPendingReadsPerSession: 4})

	before := runtime.NumGoroutine()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("\x00OB2")); err != nil {
		t.Fatal(err)
	}
	// Flood: 64 sessions (8× the cap) each pipelining 200 reads, replies
	// never read. The writer goroutine is expected to jam on backpressure.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		const beginKind, readKind = 1, 2
		for s := uint32(1); s <= 64; s++ {
			if _, err := conn.Write(muxFrame(beginKind, s, 1, nil)); err != nil {
				return
			}
			for r := uint32(2); r <= 201; r++ {
				if _, err := conn.Write(muxFrame(readKind, s, r, []byte(fmt.Sprintf("k%d-%d", s, r)))); err != nil {
					return
				}
			}
		}
	}()

	// Let the server chew on the flood, then check the damage is bounded:
	// 1 read loop + ≤8 workers + ≤8×4 resolvers, plus engine internals —
	// nowhere near the 64×200 goroutines/replies an unbounded server grows.
	time.Sleep(500 * time.Millisecond)
	if got := runtime.NumGoroutine(); got > before+100 {
		t.Fatalf("goroutines grew %d -> %d under a never-reading flood; per-session resources are unbounded", before, got)
	}

	// A well-behaved client on its own connection is still served.
	mc, err := clientproto.DialMux(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	err = kvtxn.RunWithRetries(clientproto.MuxDB{C: mc}, 50, func(tx kvtxn.Txn) error {
		return tx.Write("healthy", []byte("v"))
	})
	if err != nil {
		t.Fatalf("healthy connection starved behind the flood: %v", err)
	}
}

// TestSaturationGracefulP99 is the saturation regression test: offered load
// of 2× the epoch's read-slot budget must yield (a) committed transactions
// whose p99 stays bounded, (b) retryable sheds for the excess, and (c) no
// hangs, desyncs, or non-retryable errors.
func TestSaturationGracefulP99(t *testing.T) {
	srv := newServerOpts(t,
		enginetest.ObladiOptions{
			NumBlocks:     512,
			ValueSize:     64,
			ReadBatches:   2,
			ReadBatchSize: 4, // budget: 8 read slots per epoch
		},
		clientproto.ServerOptions{})
	mc, err := clientproto.DialMux(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	const workers = 16 // 2× the 8-slot budget of concurrent single-read txns
	var (
		mu        sync.Mutex
		latencies []time.Duration
		sheds     int
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				start := time.Now()
				tx := mc.BeginCtx(ctx)
				_, _, err := tx.Read(fmt.Sprintf("w%d-i%d", w, i))
				if err == nil {
					err = tx.Commit()
				} else {
					tx.Abort()
				}
				switch {
				case err == nil:
					mu.Lock()
					latencies = append(latencies, time.Since(start))
					mu.Unlock()
				case errors.Is(err, core.ErrShed):
					mu.Lock()
					sheds++
					mu.Unlock()
				case errors.Is(err, kvtxn.ErrAborted) || ctx.Err() != nil:
					// Ordinary retryable abort, or the run ending mid-txn.
				default:
					t.Errorf("worker %d: non-retryable error under saturation: %v", w, err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workers hung under saturation")
	}

	if len(latencies) == 0 {
		t.Fatal("no transaction committed under saturation")
	}
	if sheds == 0 {
		t.Fatal("2x offered load never shed: admission gate not engaged on the wire path")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p99 := latencies[len(latencies)*99/100]
	if p99 > 500*time.Millisecond {
		t.Fatalf("admitted-txn p99 = %v under 2x load: degradation is not graceful (epochs are sub-millisecond here)", p99)
	}
	t.Logf("saturation: %d committed, %d shed, p99 %v", len(latencies), sheds, p99)
}
