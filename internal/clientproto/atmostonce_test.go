package clientproto

// Wire-level at-most-once contract tests. A scripted server controls exactly
// when the connection dies relative to the COMMIT frame, which is the whole
// contract: a loss before the commit point is a retryable abort (nothing of
// the session can commit), a loss after the COMMIT frame is on the wire is
// ErrCommitUnknown (the server may have committed; replaying could
// double-apply).

import (
	"bufio"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"obladi/internal/kvtxn"
)

// scriptedMux accepts one mux connection, strips the magic, and hands the
// framed stream to script; the connection closes when script returns.
func scriptedMux(t *testing.T, script func(c net.Conn, r *bufio.Reader)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		magic := make([]byte, len(muxMagic))
		if _, err := io.ReadFull(c, magic); err != nil {
			return
		}
		script(c, bufio.NewReaderSize(c, 1<<16))
	}()
	return ln.Addr().String()
}

// ackFrames replies frameOK to the next n frames.
func ackFrames(t *testing.T, c net.Conn, r *bufio.Reader, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		f, err := readMuxFrame(r)
		if err != nil {
			t.Errorf("scripted server: frame %d: %v", i, err)
			return
		}
		if _, err := c.Write(appendFrame(nil, frame{kind: frameOK, session: f.session, req: f.req})); err != nil {
			t.Errorf("scripted server: ack %d: %v", i, err)
			return
		}
	}
}

func waitLost(t *testing.T, mc *MuxClient) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !mc.Lost() {
		if time.Now().After(deadline) {
			t.Fatal("client never observed the connection loss")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAtMostOncePreCommitLossIsRetryable: the connection dies before the
// COMMIT frame exists, so every surfaced error must be a retryable abort
// (wrapping both ErrConnLost and kvtxn.ErrAborted, never ErrCommitUnknown).
func TestAtMostOncePreCommitLossIsRetryable(t *testing.T) {
	addr := scriptedMux(t, func(c net.Conn, r *bufio.Reader) {
		ackFrames(t, c, r, 2)  // begin, write
		_, _ = readMuxFrame(r) // the read arrives...
		// ...and the server dies without replying.
	})
	mc, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	tx := mc.Begin()
	if err := tx.WriteAsync("k", []byte("v")).Wait(nil); err != nil {
		t.Fatalf("write ack: %v", err)
	}
	_, _, err = tx.Read("k")
	if !errors.Is(err, ErrConnLost) || !errors.Is(err, kvtxn.ErrAborted) {
		t.Fatalf("read on dying conn: got %v, want ErrConnLost+ErrAborted", err)
	}
	if errors.Is(err, ErrCommitUnknown) {
		t.Fatalf("pre-commit loss misclassified as commit-unknown: %v", err)
	}
	// Once the loss is known, a Commit attempt never puts a COMMIT frame on
	// the wire, so it too must stay retryable.
	waitLost(t, mc)
	err = tx.Commit()
	if !errors.Is(err, ErrConnLost) || !errors.Is(err, kvtxn.ErrAborted) {
		t.Fatalf("commit on known-dead conn: got %v, want ErrConnLost+ErrAborted", err)
	}
	if errors.Is(err, ErrCommitUnknown) {
		t.Fatalf("unsent COMMIT misclassified as commit-unknown: %v", err)
	}
	// A fresh transaction on the dead client is likewise retryably dead
	// (a failover-aware caller redials and replays).
	tx2 := mc.Begin()
	if err := tx2.Commit(); !errors.Is(err, kvtxn.ErrAborted) {
		t.Fatalf("fresh txn on dead conn: got %v, want retryable abort", err)
	}
}

// TestAtMostOnceLossAfterCommitSentIsUnknown: the server receives the COMMIT
// frame and dies before answering. The client cannot know the outcome, so
// the error must be ErrCommitUnknown and must NOT be retryable.
func TestAtMostOnceLossAfterCommitSentIsUnknown(t *testing.T) {
	addr := scriptedMux(t, func(c net.Conn, r *bufio.Reader) {
		ackFrames(t, c, r, 2)  // begin, write
		_, _ = readMuxFrame(r) // COMMIT received; die without a decision
	})
	mc, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	tx := mc.Begin()
	if err := tx.WriteAsync("k", []byte("v")).Wait(nil); err != nil {
		t.Fatalf("write ack: %v", err)
	}
	err = tx.Commit()
	if !errors.Is(err, ErrCommitUnknown) {
		t.Fatalf("commit with lost decision: got %v, want ErrCommitUnknown", err)
	}
	if errors.Is(err, kvtxn.ErrAborted) {
		t.Fatalf("lost decision classified retryable (would double-apply): %v", err)
	}
}

// TestAtMostOnceServerAbortStaysRetryable: an abort decision that ARRIVED is
// authoritative — it stays a retryable kvtxn.ErrAborted even though the
// connection dies immediately after.
func TestAtMostOnceServerAbortStaysRetryable(t *testing.T) {
	addr := scriptedMux(t, func(c net.Conn, r *bufio.Reader) {
		ackFrames(t, c, r, 2) // begin, write
		f, err := readMuxFrame(r)
		if err != nil {
			t.Errorf("scripted server: commit frame: %v", err)
			return
		}
		payload := encodeErrPayload(errCodeAborted, "epoch aborted the transaction")
		if _, err := c.Write(appendFrame(nil, frame{kind: frameErr, session: f.session, req: f.req, payload: payload})); err != nil {
			t.Errorf("scripted server: abort reply: %v", err)
		}
		// Connection closes right behind the decision.
	})
	mc, err := DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()
	tx := mc.Begin()
	if err := tx.WriteAsync("k", []byte("v")).Wait(nil); err != nil {
		t.Fatalf("write ack: %v", err)
	}
	err = tx.Commit()
	if !errors.Is(err, kvtxn.ErrAborted) {
		t.Fatalf("server-reported abort: got %v, want kvtxn.ErrAborted", err)
	}
	if errors.Is(err, ErrCommitUnknown) {
		t.Fatalf("received decision misclassified as unknown: %v", err)
	}
}
