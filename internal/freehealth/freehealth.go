// Package freehealth ports the FreeHealth EHR workload of the paper's
// evaluation (§11, Figure 8): an electronic health record application with
// users, patients, episodes, episode contents, prescriptions, drugs, and
// past medical history (PMH), driven by 21 transaction types. The mix is
// read-mostly with short transactions, matching the paper's description
// (five read batches, small write batch).
package freehealth

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"obladi/internal/kvtxn"
)

// Config scales the workload.
type Config struct {
	Users    int
	Patients int
	Drugs    int
	// EpisodesPerPatient preloaded.
	EpisodesPerPatient int
	Seed               uint64
}

// Defaults returns a CI-scale configuration.
func Defaults() Config {
	return Config{Users: 5, Patients: 30, Drugs: 20, EpisodesPerPatient: 2, Seed: 1}
}

// MinValueSize is the block size the workload requires.
const MinValueSize = 192

// Keys. Counters make list tables addressable without range queries.
func userKey(u int) string              { return fmt.Sprintf("fh:u:%d", u) }
func userLoginKey(login string) string  { return "fh:uidx:" + login }
func patientKey(p int) string           { return fmt.Sprintf("fh:p:%d", p) }
func patientNameKey(name string) string { return "fh:pidx:" + name }
func patientCountKey() string           { return "fh:pcnt" }
func episodeCountKey(p int) string      { return fmt.Sprintf("fh:ecnt:%d", p) }
func episodeKey(p, e int) string        { return fmt.Sprintf("fh:e:%d:%d", p, e) }
func contentCountKey(p, e int) string   { return fmt.Sprintf("fh:ccnt:%d:%d", p, e) }
func contentKey(p, e, c int) string     { return fmt.Sprintf("fh:c:%d:%d:%d", p, e, c) }
func rxCountKey(p int) string           { return fmt.Sprintf("fh:rxcnt:%d", p) }
func rxKey(p, n int) string             { return fmt.Sprintf("fh:rx:%d:%d", p, n) }
func drugKey(d int) string              { return fmt.Sprintf("fh:d:%d", d) }
func drugNameKey(name string) string    { return "fh:didx:" + name }
func pmhCountKey(p int) string          { return fmt.Sprintf("fh:pmhcnt:%d", p) }
func pmhKey(p, n int) string            { return fmt.Sprintf("fh:pmh:%d:%d", p, n) }

func patientName(p int) string { return fmt.Sprintf("patient-%d", p) }
func drugName(d int) string    { return fmt.Sprintf("drug-%d", d) }

// Load populates the initial EHR database.
func Load(db kvtxn.DB, cfg Config) error {
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b9))
	put := func(batch [][2]string) error {
		return kvtxn.RunWithRetries(db, 50, func(tx kvtxn.Txn) error {
			for _, kv := range batch {
				if err := tx.Write(kv[0], []byte(kv[1])); err != nil {
					return err
				}
			}
			return nil
		})
	}
	var batch [][2]string
	add := func(key string, t kvtxn.Tuple) error {
		batch = append(batch, [2]string{key, string(t.Encode())})
		if len(batch) >= 12 {
			b := batch
			batch = nil
			return put(b)
		}
		return nil
	}
	for u := 0; u < cfg.Users; u++ {
		login := fmt.Sprintf("doctor-%d", u)
		if err := add(userKey(u), kvtxn.Tuple{"doctor", login, "meta"}); err != nil {
			return err
		}
		if err := add(userLoginKey(login), kvtxn.Tuple{kvtxn.Itoa(int64(u))}); err != nil {
			return err
		}
	}
	for d := 0; d < cfg.Drugs; d++ {
		// Each drug interacts with up to three others.
		var inter []string
		for i := 0; i < rng.IntN(4); i++ {
			inter = append(inter, kvtxn.Itoa(int64(rng.IntN(cfg.Drugs))))
		}
		if err := add(drugKey(d), kvtxn.Tuple{drugName(d), strings.Join(inter, ",")}); err != nil {
			return err
		}
		if err := add(drugNameKey(drugName(d)), kvtxn.Tuple{kvtxn.Itoa(int64(d))}); err != nil {
			return err
		}
	}
	for p := 0; p < cfg.Patients; p++ {
		creator := rng.IntN(cfg.Users)
		if err := add(patientKey(p), kvtxn.Tuple{kvtxn.Itoa(int64(creator)), "1", patientName(p), "meta"}); err != nil {
			return err
		}
		if err := add(patientNameKey(patientName(p)), kvtxn.Tuple{kvtxn.Itoa(int64(p))}); err != nil {
			return err
		}
		if err := add(episodeCountKey(p), kvtxn.Tuple{kvtxn.Itoa(int64(cfg.EpisodesPerPatient))}); err != nil {
			return err
		}
		for e := 0; e < cfg.EpisodesPerPatient; e++ {
			if err := add(episodeKey(p, e), kvtxn.Tuple{kvtxn.Itoa(int64(creator)), "consultation", "open"}); err != nil {
				return err
			}
			if err := add(contentCountKey(p, e), kvtxn.Tuple{"1"}); err != nil {
				return err
			}
			if err := add(contentKey(p, e, 0), kvtxn.Tuple{"note", "<xml>initial consultation</xml>"}); err != nil {
				return err
			}
		}
		if err := add(rxCountKey(p), kvtxn.Tuple{"0"}); err != nil {
			return err
		}
		if err := add(pmhCountKey(p), kvtxn.Tuple{"0"}); err != nil {
			return err
		}
	}
	if err := add(patientCountKey(), kvtxn.Tuple{kvtxn.Itoa(int64(cfg.Patients))}); err != nil {
		return err
	}
	return put(batch)
}

// Client generates and executes FreeHealth transactions.
type Client struct {
	cfg Config
	rng *rand.Rand
	db  kvtxn.DB
}

// NewClient creates a client with its own RNG stream.
func NewClient(db kvtxn.DB, cfg Config, seed uint64) *Client {
	return &Client{cfg: cfg, rng: rand.New(rand.NewPCG(seed, seed^0x6a09e667)), db: db}
}

// txnSpec pairs a transaction name with its weight in the mix.
type txnSpec struct {
	name   string
	weight int
	run    func(c *Client) error
}

// specs is the 21-transaction mix (read-mostly, as in the paper).
var specs = []txnSpec{
	{"find-user-by-login", 5, (*Client).FindUserByLogin},
	{"get-user", 4, (*Client).GetUser},
	{"create-user", 1, (*Client).CreateUser},
	{"find-patient-by-name", 10, (*Client).FindPatientByName},
	{"get-patient", 12, (*Client).GetPatient},
	{"get-patient-chart", 10, (*Client).GetPatientChart},
	{"create-patient", 2, (*Client).CreatePatient},
	{"update-patient-metadata", 3, (*Client).UpdatePatientMetadata},
	{"deactivate-patient", 1, (*Client).DeactivatePatient},
	{"create-episode", 6, (*Client).CreateEpisode},
	{"list-episodes", 8, (*Client).ListEpisodes},
	{"get-episode", 8, (*Client).GetEpisode},
	{"add-episode-content", 5, (*Client).AddEpisodeContent},
	{"update-episode", 3, (*Client).UpdateEpisode},
	{"prescribe", 5, (*Client).Prescribe},
	{"list-prescriptions", 6, (*Client).ListPrescriptions},
	{"check-drug-interactions", 5, (*Client).CheckDrugInteractions},
	{"add-drug", 1, (*Client).AddDrug},
	{"find-drug-by-name", 3, (*Client).FindDrugByName},
	{"add-pmh", 2, (*Client).AddPMH},
	{"get-pmh", 4, (*Client).GetPMH},
}

// TxnNames lists the 21 transaction types.
func TxnNames() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.name
	}
	return out
}

// Next runs one transaction from the weighted mix and reports its name.
func (c *Client) Next() (string, error) {
	total := 0
	for _, s := range specs {
		total += s.weight
	}
	pick := c.rng.IntN(total)
	for _, s := range specs {
		pick -= s.weight
		if pick < 0 {
			return s.name, s.run(c)
		}
	}
	s := specs[len(specs)-1]
	return s.name, s.run(c)
}

func (c *Client) patient() int { return c.rng.IntN(c.cfg.Patients) }
func (c *Client) user() int    { return c.rng.IntN(c.cfg.Users) }
func (c *Client) drug() int    { return c.rng.IntN(c.cfg.Drugs) }

func readTuple(tx kvtxn.Txn, key string) (kvtxn.Tuple, bool, error) {
	v, found, err := tx.Read(key)
	if err != nil || !found {
		return nil, found, err
	}
	t, err := kvtxn.DecodeTuple(v)
	return t, true, err
}

func mustTuple(tx kvtxn.Txn, key string) (kvtxn.Tuple, error) {
	t, found, err := readTuple(tx, key)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("freehealth: missing row %q", key)
	}
	return t, nil
}

// --- user transactions ---

// CreateUser registers a new clinician.
func (c *Client) CreateUser() error {
	id := c.cfg.Users + c.rng.IntN(1000)
	login := fmt.Sprintf("doctor-new-%d", id)
	tx := c.db.Begin()
	defer tx.Abort()
	if err := tx.Write(userKey(id), kvtxn.Tuple{"doctor", login, "meta"}.Encode()); err != nil {
		return err
	}
	if err := tx.Write(userLoginKey(login), kvtxn.Tuple{kvtxn.Itoa(int64(id))}.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// FindUserByLogin resolves a login through the index, then loads the user.
func (c *Client) FindUserByLogin() error {
	login := fmt.Sprintf("doctor-%d", c.user())
	tx := c.db.Begin()
	defer tx.Abort()
	idx, found, err := readTuple(tx, userLoginKey(login))
	if err != nil {
		return err
	}
	if found {
		if _, err := mustTuple(tx, userKey(int(idx.MustInt(0)))); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// GetUser loads a user row directly.
func (c *Client) GetUser() error {
	tx := c.db.Begin()
	defer tx.Abort()
	if _, err := mustTuple(tx, userKey(c.user())); err != nil {
		return err
	}
	return tx.Commit()
}

// --- patient transactions ---

// CreatePatient registers a patient and the name-index entry.
func (c *Client) CreatePatient() error {
	tx := c.db.Begin()
	defer tx.Abort()
	cnt, err := mustTuple(tx, patientCountKey())
	if err != nil {
		return err
	}
	id := int(cnt.MustInt(0))
	cnt.SetInt(0, int64(id+1))
	if err := tx.Write(patientCountKey(), cnt.Encode()); err != nil {
		return err
	}
	name := patientName(id)
	if err := tx.Write(patientKey(id), kvtxn.Tuple{kvtxn.Itoa(int64(c.user())), "1", name, "meta"}.Encode()); err != nil {
		return err
	}
	if err := tx.Write(patientNameKey(name), kvtxn.Tuple{kvtxn.Itoa(int64(id))}.Encode()); err != nil {
		return err
	}
	if err := tx.Write(episodeCountKey(id), kvtxn.Tuple{"0"}.Encode()); err != nil {
		return err
	}
	if err := tx.Write(rxCountKey(id), kvtxn.Tuple{"0"}.Encode()); err != nil {
		return err
	}
	if err := tx.Write(pmhCountKey(id), kvtxn.Tuple{"0"}.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// FindPatientByName looks a patient up via the name index.
func (c *Client) FindPatientByName() error {
	tx := c.db.Begin()
	defer tx.Abort()
	idx, found, err := readTuple(tx, patientNameKey(patientName(c.patient())))
	if err != nil {
		return err
	}
	if found {
		if _, err := mustTuple(tx, patientKey(int(idx.MustInt(0)))); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// GetPatient loads a patient row.
func (c *Client) GetPatient() error {
	tx := c.db.Begin()
	defer tx.Abort()
	if _, err := mustTuple(tx, patientKey(c.patient())); err != nil {
		return err
	}
	return tx.Commit()
}

// GetPatientChart is the heavyweight read: patient, recent episodes,
// prescriptions, and PMH (what a doctor opens at a consultation).
func (c *Client) GetPatientChart() error {
	p := c.patient()
	tx := c.db.Begin()
	defer tx.Abort()
	res, err := tx.ReadMany([]string{patientKey(p), episodeCountKey(p), rxCountKey(p), pmhCountKey(p)})
	if err != nil {
		return err
	}
	counts := make([]int, 3)
	for i, r := range res[1:] {
		if !r.Found {
			return fmt.Errorf("freehealth: missing counter %q", r.Key)
		}
		t, err := kvtxn.DecodeTuple(r.Value)
		if err != nil {
			return err
		}
		counts[i] = int(t.MustInt(0))
	}
	var keys []string
	for e := max(0, counts[0]-3); e < counts[0]; e++ {
		keys = append(keys, episodeKey(p, e))
	}
	for n := max(0, counts[1]-3); n < counts[1]; n++ {
		keys = append(keys, rxKey(p, n))
	}
	for n := max(0, counts[2]-3); n < counts[2]; n++ {
		keys = append(keys, pmhKey(p, n))
	}
	if len(keys) > 0 {
		if _, err := tx.ReadMany(keys); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// UpdatePatientMetadata rewrites a patient's metadata field.
func (c *Client) UpdatePatientMetadata() error {
	p := c.patient()
	tx := c.db.Begin()
	defer tx.Abort()
	t, err := mustTuple(tx, patientKey(p))
	if err != nil {
		return err
	}
	t[3] = fmt.Sprintf("meta-%d", c.rng.IntN(1000))
	if err := tx.Write(patientKey(p), t.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// DeactivatePatient clears the IsActive flag.
func (c *Client) DeactivatePatient() error {
	p := c.patient()
	tx := c.db.Begin()
	defer tx.Abort()
	t, err := mustTuple(tx, patientKey(p))
	if err != nil {
		return err
	}
	t[1] = "0"
	if err := tx.Write(patientKey(p), t.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// --- episode transactions ---

// CreateEpisode opens a new care episode for a patient.
func (c *Client) CreateEpisode() error {
	p := c.patient()
	tx := c.db.Begin()
	defer tx.Abort()
	cnt, err := mustTuple(tx, episodeCountKey(p))
	if err != nil {
		return err
	}
	e := int(cnt.MustInt(0))
	cnt.SetInt(0, int64(e+1))
	if err := tx.Write(episodeCountKey(p), cnt.Encode()); err != nil {
		return err
	}
	if err := tx.Write(episodeKey(p, e), kvtxn.Tuple{kvtxn.Itoa(int64(c.user())), "consultation", "open"}.Encode()); err != nil {
		return err
	}
	if err := tx.Write(contentCountKey(p, e), kvtxn.Tuple{"0"}.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// ListEpisodes reads a patient's episode count and recent episode rows.
func (c *Client) ListEpisodes() error {
	p := c.patient()
	tx := c.db.Begin()
	defer tx.Abort()
	cnt, err := mustTuple(tx, episodeCountKey(p))
	if err != nil {
		return err
	}
	n := int(cnt.MustInt(0))
	var keys []string
	for e := max(0, n-5); e < n; e++ {
		keys = append(keys, episodeKey(p, e))
	}
	if len(keys) > 0 {
		if _, err := tx.ReadMany(keys); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// GetEpisode loads one episode and its contents.
func (c *Client) GetEpisode() error {
	p := c.patient()
	tx := c.db.Begin()
	defer tx.Abort()
	cnt, err := mustTuple(tx, episodeCountKey(p))
	if err != nil {
		return err
	}
	n := int(cnt.MustInt(0))
	if n == 0 {
		return tx.Commit()
	}
	e := c.rng.IntN(n)
	res, err := tx.ReadMany([]string{episodeKey(p, e), contentCountKey(p, e)})
	if err != nil {
		return err
	}
	if !res[1].Found {
		return tx.Commit()
	}
	ct, err := kvtxn.DecodeTuple(res[1].Value)
	if err != nil {
		return err
	}
	m := int(ct.MustInt(0))
	var keys []string
	for i := max(0, m-3); i < m; i++ {
		keys = append(keys, contentKey(p, e, i))
	}
	if len(keys) > 0 {
		if _, err := tx.ReadMany(keys); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// AddEpisodeContent appends a content blob to an episode.
func (c *Client) AddEpisodeContent() error {
	p := c.patient()
	tx := c.db.Begin()
	defer tx.Abort()
	cnt, err := mustTuple(tx, episodeCountKey(p))
	if err != nil {
		return err
	}
	n := int(cnt.MustInt(0))
	if n == 0 {
		return tx.Commit()
	}
	e := c.rng.IntN(n)
	ccnt, err := mustTuple(tx, contentCountKey(p, e))
	if err != nil {
		return err
	}
	i := int(ccnt.MustInt(0))
	ccnt.SetInt(0, int64(i+1))
	if err := tx.Write(contentCountKey(p, e), ccnt.Encode()); err != nil {
		return err
	}
	body := fmt.Sprintf("<xml>note %d</xml>", c.rng.IntN(1000))
	if err := tx.Write(contentKey(p, e, i), kvtxn.Tuple{"note", body}.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// UpdateEpisode rewrites an episode's status.
func (c *Client) UpdateEpisode() error {
	p := c.patient()
	tx := c.db.Begin()
	defer tx.Abort()
	cnt, err := mustTuple(tx, episodeCountKey(p))
	if err != nil {
		return err
	}
	n := int(cnt.MustInt(0))
	if n == 0 {
		return tx.Commit()
	}
	e := c.rng.IntN(n)
	t, err := mustTuple(tx, episodeKey(p, e))
	if err != nil {
		return err
	}
	t[2] = "closed"
	if err := tx.Write(episodeKey(p, e), t.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// --- prescription and drug transactions ---

// Prescribe checks interactions against the patient's current
// prescriptions, then records a new prescription.
func (c *Client) Prescribe() error {
	p := c.patient()
	d := c.drug()
	tx := c.db.Begin()
	defer tx.Abort()
	res, err := tx.ReadMany([]string{rxCountKey(p), drugKey(d)})
	if err != nil {
		return err
	}
	if !res[0].Found || !res[1].Found {
		return fmt.Errorf("freehealth: missing prescription rows")
	}
	cnt, err := kvtxn.DecodeTuple(res[0].Value)
	if err != nil {
		return err
	}
	newDrug, err := kvtxn.DecodeTuple(res[1].Value)
	if err != nil {
		return err
	}
	n := int(cnt.MustInt(0))
	// Interaction check: read current prescriptions and their drugs.
	var rxKeys []string
	for i := max(0, n-3); i < n; i++ {
		rxKeys = append(rxKeys, rxKey(p, i))
	}
	if len(rxKeys) > 0 {
		rxs, err := tx.ReadMany(rxKeys)
		if err != nil {
			return err
		}
		var drugKeys []string
		for _, r := range rxs {
			if !r.Found {
				continue
			}
			t, err := kvtxn.DecodeTuple(r.Value)
			if err != nil {
				return err
			}
			drugKeys = append(drugKeys, drugKey(int(t.MustInt(0))))
		}
		if len(drugKeys) > 0 {
			if _, err := tx.ReadMany(drugKeys); err != nil {
				return err
			}
		}
	}
	_ = newDrug
	cnt.SetInt(0, int64(n+1))
	if err := tx.Write(rxCountKey(p), cnt.Encode()); err != nil {
		return err
	}
	if err := tx.Write(rxKey(p, n), kvtxn.Tuple{kvtxn.Itoa(int64(d)), "1x daily"}.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// ListPrescriptions reads a patient's prescriptions.
func (c *Client) ListPrescriptions() error {
	p := c.patient()
	tx := c.db.Begin()
	defer tx.Abort()
	cnt, err := mustTuple(tx, rxCountKey(p))
	if err != nil {
		return err
	}
	n := int(cnt.MustInt(0))
	var keys []string
	for i := max(0, n-5); i < n; i++ {
		keys = append(keys, rxKey(p, i))
	}
	if len(keys) > 0 {
		if _, err := tx.ReadMany(keys); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// CheckDrugInteractions reads two drugs and compares interaction lists.
func (c *Client) CheckDrugInteractions() error {
	a, b := c.drug(), c.drug()
	tx := c.db.Begin()
	defer tx.Abort()
	keys := []string{drugKey(a)}
	if b != a {
		keys = append(keys, drugKey(b))
	}
	res, err := tx.ReadMany(keys)
	if err != nil {
		return err
	}
	for _, r := range res {
		if !r.Found {
			return fmt.Errorf("freehealth: missing drug %q", r.Key)
		}
	}
	return tx.Commit()
}

// AddDrug registers a drug and its name-index entry.
func (c *Client) AddDrug() error {
	id := c.cfg.Drugs + c.rng.IntN(1000)
	tx := c.db.Begin()
	defer tx.Abort()
	name := fmt.Sprintf("drug-new-%d", id)
	if err := tx.Write(drugKey(id), kvtxn.Tuple{name, ""}.Encode()); err != nil {
		return err
	}
	if err := tx.Write(drugNameKey(name), kvtxn.Tuple{kvtxn.Itoa(int64(id))}.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// FindDrugByName resolves a drug through the name index.
func (c *Client) FindDrugByName() error {
	tx := c.db.Begin()
	defer tx.Abort()
	idx, found, err := readTuple(tx, drugNameKey(drugName(c.drug())))
	if err != nil {
		return err
	}
	if found {
		if _, err := mustTuple(tx, drugKey(int(idx.MustInt(0)))); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// --- PMH transactions ---

// AddPMH appends a past-medical-history entry.
func (c *Client) AddPMH() error {
	p := c.patient()
	tx := c.db.Begin()
	defer tx.Abort()
	cnt, err := mustTuple(tx, pmhCountKey(p))
	if err != nil {
		return err
	}
	n := int(cnt.MustInt(0))
	cnt.SetInt(0, int64(n+1))
	if err := tx.Write(pmhCountKey(p), cnt.Encode()); err != nil {
		return err
	}
	if err := tx.Write(pmhKey(p, n), kvtxn.Tuple{"allergy", "meta"}.Encode()); err != nil {
		return err
	}
	return tx.Commit()
}

// GetPMH reads a patient's history entries.
func (c *Client) GetPMH() error {
	p := c.patient()
	tx := c.db.Begin()
	defer tx.Abort()
	cnt, err := mustTuple(tx, pmhCountKey(p))
	if err != nil {
		return err
	}
	n := int(cnt.MustInt(0))
	var keys []string
	for i := max(0, n-5); i < n; i++ {
		keys = append(keys, pmhKey(p, i))
	}
	if len(keys) > 0 {
		if _, err := tx.ReadMany(keys); err != nil {
			return err
		}
	}
	return tx.Commit()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
