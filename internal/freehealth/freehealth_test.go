package freehealth

import (
	"errors"
	"testing"

	"obladi/internal/enginetest"
	"obladi/internal/kvtxn"
)

func testEngines(t *testing.T) []enginetest.Engine {
	t.Helper()
	engines := enginetest.Baselines()
	ob, err := enginetest.NewObladi(enginetest.ObladiOptions{ValueSize: MinValueSize * 2, NumBlocks: 2048})
	if err != nil {
		t.Fatal(err)
	}
	ob4, err := enginetest.NewObladi(enginetest.ObladiOptions{ValueSize: MinValueSize * 2, NumBlocks: 1024, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The same engine reached through the multiplexed wire protocol: the
	// identical business logic must hold over the full client stack.
	obmux, err := enginetest.NewObladiMux(enginetest.ObladiOptions{ValueSize: MinValueSize * 2, NumBlocks: 2048})
	if err != nil {
		t.Fatal(err)
	}
	engines = append(engines, ob, ob4, obmux)
	return engines
}

func TestTwentyOneTransactionTypes(t *testing.T) {
	names := TxnNames()
	if len(names) != 21 {
		t.Fatalf("FreeHealth defines %d transaction types, paper says 21", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate transaction name %q", n)
		}
		seen[n] = true
	}
}

func TestLoadAndChart(t *testing.T) {
	cfg := Defaults()
	for _, e := range testEngines(t) {
		t.Run(e.Name, func(t *testing.T) {
			defer e.DB.Close()
			if err := Load(e.DB, cfg); err != nil {
				t.Fatalf("load: %v", err)
			}
			client := NewClient(e.DB, cfg, 3)
			if err := client.GetPatientChart(); err != nil {
				t.Fatalf("chart: %v", err)
			}
			if v := e.Violation(); v != nil {
				t.Fatal(v)
			}
		})
	}
}

func TestMixRuns(t *testing.T) {
	cfg := Defaults()
	for _, e := range testEngines(t) {
		t.Run(e.Name, func(t *testing.T) {
			defer e.DB.Close()
			if err := Load(e.DB, cfg); err != nil {
				t.Fatal(err)
			}
			client := NewClient(e.DB, cfg, 17)
			n := 60
			if e.Name == "obladi" {
				n = 15
			}
			ran := map[string]int{}
			for i := 0; i < n; i++ {
				name, err := client.Next()
				if err != nil && !errors.Is(err, kvtxn.ErrAborted) {
					t.Fatalf("%s: %v", name, err)
				}
				if err == nil {
					ran[name]++
				}
			}
			if len(ran) < 4 {
				t.Fatalf("mix too narrow: %v", ran)
			}
		})
	}
}

func TestEpisodeLifecycle(t *testing.T) {
	cfg := Defaults()
	e := enginetest.Baselines()[0]
	defer e.DB.Close()
	if err := Load(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.DB, cfg, 5)
	for i := 0; i < 5; i++ {
		if err := client.CreateEpisode(); err != nil && !errors.Is(err, kvtxn.ErrAborted) {
			t.Fatal(err)
		}
		if err := client.AddEpisodeContent(); err != nil && !errors.Is(err, kvtxn.ErrAborted) {
			t.Fatal(err)
		}
		if err := client.GetEpisode(); err != nil && !errors.Is(err, kvtxn.ErrAborted) {
			t.Fatal(err)
		}
	}
	// Episode counters must be consistent with episode rows.
	err := kvtxn.RunWithRetries(e.DB, 20, func(tx kvtxn.Txn) error {
		for p := 0; p < cfg.Patients; p++ {
			cnt, err := mustTuple(tx, episodeCountKey(p))
			if err != nil {
				return err
			}
			n := int(cnt.MustInt(0))
			if n == 0 {
				continue
			}
			if _, err := mustTuple(tx, episodeKey(p, n-1)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPrescribeRecordsRx(t *testing.T) {
	cfg := Defaults()
	e := enginetest.Baselines()[0]
	defer e.DB.Close()
	if err := Load(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.DB, cfg, 9)
	for i := 0; i < 8; i++ {
		if err := client.Prescribe(); err != nil && !errors.Is(err, kvtxn.ErrAborted) {
			t.Fatal(err)
		}
	}
	total := 0
	err := kvtxn.RunWithRetries(e.DB, 20, func(tx kvtxn.Txn) error {
		total = 0
		for p := 0; p < cfg.Patients; p++ {
			cnt, err := mustTuple(tx, rxCountKey(p))
			if err != nil {
				return err
			}
			total += int(cnt.MustInt(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no prescriptions recorded")
	}
}

func TestCreatePatientAllocatesIDs(t *testing.T) {
	cfg := Defaults()
	e := enginetest.Baselines()[0]
	defer e.DB.Close()
	if err := Load(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.DB, cfg, 21)
	for i := 0; i < 3; i++ {
		if err := client.CreatePatient(); err != nil && !errors.Is(err, kvtxn.ErrAborted) {
			t.Fatal(err)
		}
	}
	err := kvtxn.RunWithRetries(e.DB, 20, func(tx kvtxn.Txn) error {
		cnt, err := mustTuple(tx, patientCountKey())
		if err != nil {
			return err
		}
		if int(cnt.MustInt(0)) < cfg.Patients+1 {
			return errors.New("patient counter did not advance")
		}
		// The newest patient must exist and be indexed.
		id := int(cnt.MustInt(0)) - 1
		if _, err := mustTuple(tx, patientKey(id)); err != nil {
			return err
		}
		if _, err := mustTuple(tx, patientNameKey(patientName(id))); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeactivatePatient(t *testing.T) {
	cfg := Defaults()
	e := enginetest.Baselines()[0]
	defer e.DB.Close()
	if err := Load(e.DB, cfg); err != nil {
		t.Fatal(err)
	}
	client := NewClient(e.DB, cfg, 23)
	if err := client.DeactivatePatient(); err != nil {
		t.Fatal(err)
	}
	// At least one patient must be inactive now.
	inactive := 0
	err := kvtxn.RunWithRetries(e.DB, 20, func(tx kvtxn.Txn) error {
		inactive = 0
		for p := 0; p < cfg.Patients; p++ {
			t, err := mustTuple(tx, patientKey(p))
			if err != nil {
				return err
			}
			if t[1] == "0" {
				inactive++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if inactive == 0 {
		t.Fatal("no patient deactivated")
	}
}
