module obladi

go 1.24
