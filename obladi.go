// Package obladi is a transactional key-value store that hides access
// patterns from its storage backend, implementing the system described in
// "Obladi: Oblivious Serializable Transactions in the Cloud" (OSDI 2018).
//
// A DB runs a trusted proxy: transactions execute under multiversioned
// timestamp ordering, commit decisions are delayed to the end of fixed
// epochs, and all storage traffic flows through a parallel Ring ORAM whose
// request pattern is independent of the workload. The key space can be
// hash-partitioned across multiple independent ORAM shards (Options.Shards),
// coordinated so cross-shard transactions still commit atomically while
// aggregate epoch capacity scales with the shard count. Storage can be
// embedded (in-memory) or remote obladi-storage servers reached over TCP
// (one per shard); either way the storage side never learns which keys are
// accessed, when, or how often — only the fixed batch schedule.
//
// Basic usage:
//
//	db, err := obladi.Open(obladi.Options{MaxKeys: 10000})
//	...
//	err = db.Update(func(tx *obladi.Txn) error {
//		v, _, err := tx.Read("balance/alice")
//		...
//		return tx.Write("balance/alice", newValue)
//	})
package obladi

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/replica"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// Errors surfaced by transactions.
var (
	// ErrAborted reports that a transaction aborted (conflict, cascading
	// abort, epoch boundary, or shutdown). Retrying is usually appropriate.
	ErrAborted = core.ErrAborted
	// ErrEpochFull reports that an epoch ran out of batch capacity.
	ErrEpochFull = core.ErrEpochFull
	// ErrClosed reports use after Close.
	ErrClosed = core.ErrClosed
	// ErrValueTooLarge reports a value exceeding MaxValueSize.
	ErrValueTooLarge = core.ErrValueTooLarge
	// ErrShed reports that admission control refused an operation because
	// the current epoch's batch-slot budget is spoken for. It also matches
	// ErrAborted and ErrEpochFull, so generic retry loops handle it; shed-
	// aware clients can match it specifically to back off for an epoch.
	ErrShed = core.ErrShed
)

// Options configures a DB. The zero value is usable for small embedded
// stores; see DESIGN.md for how the batching parameters (Table 1 of the
// paper) should track the application's transaction shapes.
type Options struct {
	// MaxKeys bounds the number of distinct keys (ORAM capacity).
	// Default 8192.
	MaxKeys int
	// Shards partitions the key space by hash across this many independent
	// Ring ORAM instances, each with its own position map, stash, batch
	// quotas, recovery log, and storage backend. Transactions may span
	// shards and still commit atomically at the global epoch boundary; the
	// batching parameters below apply per shard, so aggregate epoch capacity
	// grows with the shard count. Default 1. See DESIGN.md ("Sharding").
	Shards int
	// MaxValueSize bounds value length in bytes. Default 256.
	MaxValueSize int
	// MaxKeySize bounds key length in bytes. Default 64.
	MaxKeySize int

	// ReadBatches (R), ReadBatchSize (bread) and WriteBatchSize (bwrite)
	// fix the epoch's observable shape. Defaults: 4, 32, 32.
	ReadBatches    int
	ReadBatchSize  int
	WriteBatchSize int
	// BatchInterval is Δ, the fixed batch cadence. Zero selects manual
	// mode, where the caller drives the schedule with Advance (useful for
	// tests and deterministic tools).
	BatchInterval time.Duration
	// EagerBatches fires a read batch as soon as it fills rather than
	// waiting out Δ. This makes the schedule load-dependent (observable);
	// use only for throughput experiments. Eager firing never moves the
	// epoch boundary, which always waits out its Δ slot.
	EagerBatches bool
	// SyncEpochBoundary disables epoch-boundary pipelining: every epoch's
	// write-back and durability round trips complete before the next
	// epoch's batches start, instead of overlapping them. Slower on
	// high-latency storage; useful as an ablation baseline.
	SyncEpochBoundary bool
	// DisableAdmission turns off the overload-control admission gate: reads
	// past the epoch's remaining batch-slot budget queue unboundedly and
	// abort at the seal instead of shedding immediately with a retryable
	// ErrShed. Useful only as an ablation baseline; see DESIGN.md
	// ("Overload and admission control").
	DisableAdmission bool

	// Z, S, A tune the Ring ORAM (reals/dummies per bucket, eviction
	// rate). Zero selects 8/12/8, suitable for small stores; the paper's
	// cloud configuration is 100/196/168.
	Z, S, A int

	// RemoteAddr connects to obladi-storage servers instead of using
	// embedded in-memory storage. With Shards > 1 it must hold one
	// comma-separated address per shard; each server stores exactly one
	// shard's bucket tree and recovery log.
	RemoteAddr string
	// SimulatedLatency, when non-empty, wraps embedded storage with one of
	// the paper's latency profiles: "server" (0.3ms), "server-wan" (10ms),
	// "dynamo" (1/3ms, capped concurrency).
	SimulatedLatency string

	// DisableDurability turns off the recovery unit (no crash recovery).
	DisableDurability bool
	// FullCheckpointEvery sets the full-checkpoint cadence (default 16).
	FullCheckpointEvery int

	// KeySeed derives the encryption/MAC keys deterministically. Required
	// to reopen an existing store after a restart; nil generates a random
	// key (suitable only for stores that die with the process).
	KeySeed []byte

	// Parallelism caps concurrent storage requests. Default 64.
	Parallelism int

	// ReplicaListen, when non-empty, enables hot-standby replication: the
	// proxy listens on this address for a standby, mirrors every
	// recovery-log record to it, and fences the storage backends under its
	// proxy generation so a standby that later promotes revokes this
	// proxy's write authority. See DESIGN.md ("Proxy replication and
	// failover"). Requires durability.
	ReplicaListen string
	// ReplicaAcked gates commit acknowledgements on standby receipt: the
	// epoch boundary additionally waits until the attached standby holds
	// every log record (degrading to local-durable, loudly, when no
	// standby keeps up). Without it replication is best-effort warmth that
	// only shortens failover.
	ReplicaAcked bool
	// LeaseTimeout is the failover detector's patience: a standby promotes
	// after this long without a frame from the primary. Default 750ms.
	LeaseTimeout time.Duration
}

// DB is an oblivious transactional key-value store.
type DB struct {
	proxy    *core.Proxy
	backends []storage.Backend
	sender   *replica.Sender // non-nil when ReplicaListen is set
}

// normalize applies Options defaults and derives the crypto key and
// per-shard ORAM parameters shared by Open and OpenStandby.
func normalize(opt Options) (Options, ringoram.Params, *cryptoutil.Key, error) {
	if opt.MaxKeys <= 0 {
		opt.MaxKeys = 8192
	}
	if opt.Shards <= 0 {
		opt.Shards = 1
	}
	if opt.MaxValueSize <= 0 {
		opt.MaxValueSize = 256
	}
	if opt.MaxKeySize <= 0 {
		opt.MaxKeySize = 64
	}
	if opt.Z <= 0 {
		opt.Z = 8
	}
	if opt.S <= 0 {
		opt.S = 12
	}
	if opt.A <= 0 {
		opt.A = 8
	}
	var key *cryptoutil.Key
	var err error
	if opt.KeySeed != nil {
		key = cryptoutil.KeyFromSeed(opt.KeySeed)
	} else {
		key, err = cryptoutil.NewKey()
		if err != nil {
			return opt, ringoram.Params{}, nil, err
		}
	}
	// Each shard gets its own ORAM sized for its slice of the key space.
	// Hash partitioning is only near-uniform, so shards are provisioned with
	// headroom against realistic skew.
	perShard := (opt.MaxKeys + opt.Shards - 1) / opt.Shards
	if opt.Shards > 1 {
		perShard += perShard/4 + 16
	}
	params := ringoram.Params{
		NumBlocks: perShard,
		Z:         opt.Z,
		S:         opt.S,
		A:         opt.A,
		KeySize:   opt.MaxKeySize,
		ValueSize: opt.MaxValueSize,
	}
	if err := params.Validate(); err != nil {
		return opt, params, nil, err
	}
	return opt, params, key, nil
}

// openBackends builds the per-shard storage backends (remote or embedded).
func openBackends(opt Options, params ringoram.Params) ([]storage.Backend, error) {
	if opt.RemoteAddr != "" {
		addrs, err := splitAddrs(opt.RemoteAddr)
		if err != nil {
			return nil, err
		}
		if len(addrs) != opt.Shards {
			return nil, fmt.Errorf("obladi: %d shards need %d comma-separated storage addresses in RemoteAddr, got %d", opt.Shards, opt.Shards, len(addrs))
		}
		return storage.DialMulti(addrs)
	}
	var backends []storage.Backend
	for i := 0; i < opt.Shards; i++ {
		mem := storage.NewMemBackend(params.Geometry().NumBuckets)
		var backend storage.Backend
		switch opt.SimulatedLatency {
		case "":
			backend = mem
		case "server":
			backend = storage.WithLatency(mem, storage.ProfileServer)
		case "server-wan":
			backend = storage.WithLatency(mem, storage.ProfileServerWAN)
		case "dynamo":
			backend = storage.WithLatency(mem, storage.ProfileDynamo)
		default:
			return nil, fmt.Errorf("obladi: unknown latency profile %q", opt.SimulatedLatency)
		}
		backends = append(backends, backend)
	}
	return backends, nil
}

// coreConfig maps Options onto the proxy configuration.
func coreConfig(opt Options, params ringoram.Params, key *cryptoutil.Key) core.Config {
	return core.Config{
		Params:              params,
		Key:                 key,
		ReadBatches:         opt.ReadBatches,
		ReadBatchSize:       opt.ReadBatchSize,
		WriteBatchSize:      opt.WriteBatchSize,
		BatchInterval:       opt.BatchInterval,
		EagerBatches:        opt.EagerBatches,
		DisableAdmission:    opt.DisableAdmission,
		Boundary:            boundaryMode(opt),
		Parallelism:         opt.Parallelism,
		DisableDurability:   opt.DisableDurability,
		FullCheckpointEvery: opt.FullCheckpointEvery,
	}
}

// fenceBackends claims a proxy generation on every fence-capable backend and
// returns the fenced views to run through. Called whenever replication is in
// play: writing through a fenced view is what lets a later generation (a
// promoted standby) revoke this proxy's write authority instead of racing it.
func fenceBackends(backends []storage.Backend) []storage.Backend {
	out := make([]storage.Backend, len(backends))
	for i, b := range backends {
		out[i] = b
		if f, ok := b.(storage.Fenceable); ok {
			if view, _, err := f.AcquireFence(); err == nil {
				out[i] = view
			}
		}
	}
	return out
}

// Open creates (or, when the backends' recovery logs hold a committed
// checkpoint, recovers) a DB.
func Open(opt Options) (*DB, error) {
	opt, params, key, err := normalize(opt)
	if err != nil {
		return nil, err
	}
	backends, err := openBackends(opt, params)
	if err != nil {
		return nil, err
	}
	cfg := coreConfig(opt, params, key)
	var sender *replica.Sender
	if opt.ReplicaListen != "" {
		if opt.DisableDurability {
			storage.CloseAll(backends)
			return nil, errors.New("obladi: ReplicaListen requires durability (the recovery log is the replication stream)")
		}
		sender, err = replica.NewSender(opt.ReplicaListen, replica.SenderConfig{
			Shards: opt.Shards,
			Acked:  opt.ReplicaAcked,
		})
		if err != nil {
			storage.CloseAll(backends)
			return nil, err
		}
		cfg.Replicator = sender
		backends = fenceBackends(backends)
	}
	proxy, err := core.NewSharded(backends, cfg)
	if err != nil {
		if sender != nil {
			sender.Close()
		}
		storage.CloseAll(backends)
		return nil, err
	}
	return &DB{proxy: proxy, backends: backends, sender: sender}, nil
}

// OpenStandby runs as a hot standby of the primary replicating at
// primaryAddr (its ReplicaListen address). It mirrors the primary's
// recovery logs into memory, blocks until the primary's lease expires (or
// ctx is done, which aborts with ctx's error), then promotes: fences the
// storage backends — revoking the dead (or zombie) primary's write
// authority — tops its warm logs up from the durable tail, runs crash
// recovery over them, and returns a live DB. Options must match the
// primary's (same KeySeed, shards, batching and storage addresses);
// KeySeed is required since the standby must open the primary's sealed
// records. Every transaction the primary acknowledged is visible in the
// returned DB — acknowledgements stand on the durable log the promotion
// replays.
func OpenStandby(ctx context.Context, primaryAddr string, opt Options) (*DB, error) {
	opt, params, key, err := normalize(opt)
	if err != nil {
		return nil, err
	}
	if opt.KeySeed == nil {
		return nil, errors.New("obladi: OpenStandby requires KeySeed (must match the primary's)")
	}
	if opt.DisableDurability {
		return nil, errors.New("obladi: OpenStandby requires durability")
	}
	backends, err := openBackends(opt, params)
	if err != nil {
		return nil, err
	}
	cfg := coreConfig(opt, params, key)
	base, err := core.WALConfigFor(cfg, 0, opt.Shards)
	if err != nil {
		storage.CloseAll(backends)
		return nil, err
	}
	sb, err := replica.NewStandby(primaryAddr, backends, replica.StandbyConfig{
		LeaseTimeout: opt.LeaseTimeout,
		Decode:       &base,
	})
	if err != nil {
		storage.CloseAll(backends)
		return nil, err
	}
	if err := sb.WaitPrimaryDown(ctx); err != nil {
		sb.Stop()
		storage.CloseAll(backends)
		return nil, err
	}
	res, err := sb.Promote(base)
	if err != nil {
		storage.CloseAll(backends)
		return nil, err
	}
	var sender *replica.Sender
	if opt.ReplicaListen != "" {
		sender, err = replica.NewSender(opt.ReplicaListen, replica.SenderConfig{
			Shards: opt.Shards,
			Acked:  opt.ReplicaAcked,
		})
		if err != nil {
			storage.CloseAll(backends)
			return nil, err
		}
		cfg.Replicator = sender
	}
	var proxy *core.Proxy
	if res.Recoveries != nil {
		proxy, err = core.NewShardedFromRecoveries(res.Stores, cfg, res.Recoveries)
	} else {
		// The dead primary never committed a first boot; nothing to carry
		// over, so bootstrap cold on the fenced views.
		proxy, err = core.NewSharded(res.Stores, cfg)
	}
	if err != nil {
		if sender != nil {
			sender.Close()
		}
		storage.CloseAll(backends)
		return nil, err
	}
	return &DB{proxy: proxy, backends: res.Stores, sender: sender}, nil
}

// splitAddrs parses a comma-separated address list, trimming surrounding
// whitespace ("a, b" means "a" and "b", not " b") and rejecting empty
// entries, which would otherwise surface as a confusing dial error.
func splitAddrs(s string) ([]string, error) {
	parts := strings.Split(s, ",")
	addrs := make([]string, 0, len(parts))
	for i, p := range parts {
		a := strings.TrimSpace(p)
		if a == "" {
			return nil, fmt.Errorf("obladi: RemoteAddr %q: empty address at position %d", s, i+1)
		}
		addrs = append(addrs, a)
	}
	return addrs, nil
}

func boundaryMode(opt Options) core.BoundaryMode {
	if opt.SyncEpochBoundary {
		return core.BoundarySync
	}
	return core.BoundaryAuto
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	return db.BeginCtx(context.Background())
}

// BeginCtx starts a transaction bound to ctx: cancellation or deadline
// expiry aborts it, and unblocks any operation waiting on a batch or on the
// epoch's commit decision. The oblivious schedule is unaffected — batch
// slots a cancelled transaction queued still execute as dummies.
func (db *DB) BeginCtx(ctx context.Context) *Txn {
	return &Txn{t: db.proxy.BeginCtx(ctx)}
}

// Update runs fn in a transaction and commits, retrying up to 10 times on
// aborts. fn must be idempotent.
func (db *DB) Update(fn func(*Txn) error) error {
	return db.UpdateCtx(context.Background(), fn)
}

// UpdateCtx is Update bound to ctx: each attempt's transaction carries ctx,
// and retries stop once ctx is done.
func (db *DB) UpdateCtx(ctx context.Context, fn func(*Txn) error) error {
	var last error
	for attempt := 0; attempt < 10; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return last
			}
			return err
		}
		tx := db.BeginCtx(ctx)
		if err := fn(tx); err != nil {
			tx.Abort()
			if errors.Is(err, ErrAborted) || errors.Is(err, ErrEpochFull) {
				last = err
				continue
			}
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAborted) && !errors.Is(err, ErrEpochFull) {
			return err
		}
		last = err
	}
	return last
}

// View runs fn in a transaction that is aborted afterwards (reads only take
// effect); retries like Update.
func (db *DB) View(fn func(*Txn) error) error {
	return db.ViewCtx(context.Background(), fn)
}

// ViewCtx is View bound to ctx, with UpdateCtx's retry semantics.
func (db *DB) ViewCtx(ctx context.Context, fn func(*Txn) error) error {
	var last error
	for attempt := 0; attempt < 10; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return last
			}
			return err
		}
		tx := db.BeginCtx(ctx)
		err := fn(tx)
		tx.Abort()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAborted) && !errors.Is(err, ErrEpochFull) {
			return err
		}
		last = err
	}
	return last
}

// Advance drives the batch schedule by one step in manual mode
// (BatchInterval == 0): the next read batch, or the epoch boundary.
func (db *DB) Advance() error { return db.proxy.Advance() }

// Epoch returns the current epoch number.
func (db *DB) Epoch() uint64 { return db.proxy.Epoch() }

// Shards returns the number of key-space partitions.
func (db *DB) Shards() int { return db.proxy.Shards() }

// ReplicaAddr returns the bound replica-listener address when this DB
// replicates to a hot standby (Options.ReplicaListen), "" otherwise. With a
// ":0" listen spec this is how a standby learns the actual port.
func (db *DB) ReplicaAddr() string {
	if db.sender == nil {
		return ""
	}
	return db.sender.Addr()
}

// Stats is a snapshot of proxy counters, the public view of the trusted
// proxy's bookkeeping: epochs and transaction fates, batch-slot utilization
// (how much of the fixed schedule carried real work), and the storage wire
// call counters the vectorized I/O plane exposes. Benchmarks and operators
// read these instead of reaching into internal packages.
type Stats struct {
	// Shards is the number of key-space partitions.
	Shards int
	// Epochs counts committed epoch boundaries.
	Epochs uint64
	// Committed and Aborted count transaction fates.
	Committed uint64
	Aborted   uint64
	// ConflictAborts and CascadingAborts break down MVTSO aborts.
	ConflictAborts  int64
	CascadingAborts int64
	// ReadBatchSlots counts read-batch slots issued across all shards;
	// RealReads the slots that carried real requests (the rest is padding).
	ReadBatchSlots uint64
	RealReads      uint64
	// WriteSlots and RealWrites are the write-batch equivalents.
	WriteSlots uint64
	RealWrites uint64
	// StorageReadCalls and StorageWriteCalls count storage wire calls; their
	// ratio to the slot counters is the vectored I/O batching factor.
	StorageReadCalls  int64
	StorageWriteCalls int64
	// StashPeak is the maximum Ring ORAM stash occupancy over shards.
	StashPeak int
	// RecoveryReplayed counts logged reads replayed by crash recovery.
	RecoveryReplayed int
	// ShedReads counts reads refused by the admission gate (overload).
	ShedReads uint64
	// AdmittedSessions counts sessions that got at least one fetch admitted.
	AdmittedSessions uint64
	// ReadQueueDepth is the current admitted-but-unscheduled fetch count
	// across shards (instantaneous, not cumulative).
	ReadQueueDepth int
}

// Stats returns a snapshot of proxy counters.
func (db *DB) Stats() Stats {
	s := db.proxy.Stats()
	return Stats{
		Shards:            s.Shards,
		Epochs:            s.Epochs,
		Committed:         s.Committed,
		Aborted:           s.Aborted,
		ConflictAborts:    s.ConflictAborts,
		CascadingAborts:   s.CascadingAborts,
		ReadBatchSlots:    s.ReadBatchSlots,
		RealReads:         s.RealReads,
		WriteSlots:        s.WriteSlots,
		RealWrites:        s.RealWrites,
		StorageReadCalls:  s.Executor.ReadCalls,
		StorageWriteCalls: s.Executor.WriteCalls,
		StashPeak:         s.StashPeak,
		RecoveryReplayed:  s.RecoveryReplayed,
		ShedReads:         s.ShedReads,
		AdmittedSessions:  s.AdmittedSessions,
		ReadQueueDepth:    s.ReadQueueDepth,
	}
}

// Close shuts the proxy down; in-flight transactions abort.
func (db *DB) Close() error {
	err := db.proxy.Close()
	if db.sender != nil {
		db.sender.Close()
	}
	if cerr := storage.CloseAll(db.backends); err == nil {
		err = cerr
	}
	return err
}

// Shutdown drains the DB gracefully (the SIGTERM path): the epoch schedule
// stops, the current epoch seals and commits so every accepted transaction
// resolves truthfully, and only then does the proxy close. Prefer it over
// Close when the process is being retired rather than killed.
func (db *DB) Shutdown() error {
	err := db.proxy.Shutdown()
	if db.sender != nil {
		db.sender.Close()
	}
	if cerr := storage.CloseAll(db.backends); err == nil {
		err = cerr
	}
	return err
}

// ReplicationStats reports the primary-side replication state: whether a
// standby is attached, stream/ack offsets, and how many barriers degraded
// to local-durable. Zero-valued unless ReplicaListen was set.
func (db *DB) ReplicationStats() (replica.SenderStats, bool) {
	if db.sender == nil {
		return replica.SenderStats{}, false
	}
	return db.sender.Stats(), true
}

// Txn is a transaction handle. Operations must not be called concurrently,
// but Futures returned by ReadAsync may be resolved from other goroutines.
type Txn struct {
	t *core.Txn
}

// Read returns the value visible to this transaction.
func (tx *Txn) Read(key string) (value []byte, found bool, err error) {
	return tx.t.Read(key)
}

// Future is the pending result of a ReadAsync; it resolves when the read's
// batch executes.
type Future struct {
	f *core.Future
}

// Wait blocks until the Future resolves or ctx is done (nil means the
// transaction's own context). Cancellation aborts the transaction; the
// queued batch slot still executes as a dummy, so the oblivious schedule is
// unaffected.
func (f *Future) Wait(ctx context.Context) (value []byte, found bool, err error) {
	return f.f.Wait(ctx)
}

// Value resolves the Future under the transaction's own context.
func (f *Future) Value() (value []byte, found bool, err error) { return f.f.Value() }

// ReadAsync registers a read of key and returns a Future immediately, so one
// goroutine can issue a transaction's whole read set before the first batch
// fires — every independent read then lands in the same batch:
//
//	a, b := tx.ReadAsync("alice"), tx.ReadAsync("bob")
//	av, _, err := a.Value()
//	bv, _, err := b.Value()
func (tx *Txn) ReadAsync(key string) *Future {
	return &Future{f: tx.t.ReadAsync(key)}
}

// OpFuture is the result of an enqueue-style mutation (WriteAsync,
// DeleteAsync).
type OpFuture struct {
	err error
}

// Wait reports the operation's outcome. Embedded mutations are pure
// enqueues (delayed write-back: nothing reaches storage before the epoch
// boundary), so the future is always already resolved; the ctx parameter
// exists for signature symmetry with the wire client, where WriteAsync
// genuinely pipelines.
func (f *OpFuture) Wait(ctx context.Context) error { return f.err }

// Err is Wait without a context.
func (f *OpFuture) Err() error { return f.err }

// WriteAsync enqueues a write and returns its outcome as an OpFuture.
func (tx *Txn) WriteAsync(key string, value []byte) *OpFuture {
	return &OpFuture{err: tx.t.Write(key, value)}
}

// DeleteAsync enqueues a delete and returns its outcome as an OpFuture.
func (tx *Txn) DeleteAsync(key string) *OpFuture {
	return &OpFuture{err: tx.t.Delete(key)}
}

// ReadMany reads independent keys in one batch round; results are parallel
// to keys. Prefer it over sequential Reads: each chain of dependent reads
// costs one read batch.
func (tx *Txn) ReadMany(keys []string) ([]KV, error) {
	res, err := tx.t.ReadMany(keys)
	if err != nil {
		return nil, err
	}
	out := make([]KV, len(res))
	for i, r := range res {
		out[i] = KV{Key: r.Key, Value: r.Value, Found: r.Found}
	}
	return out, nil
}

// KV is one ReadMany result.
type KV struct {
	Key   string
	Value []byte
	Found bool
}

// Write stores value under key.
func (tx *Txn) Write(key string, value []byte) error { return tx.t.Write(key, value) }

// Delete removes key.
func (tx *Txn) Delete(key string) error { return tx.t.Delete(key) }

// Commit requests commit and blocks until the epoch decides; nil means the
// transaction is durably committed.
func (tx *Txn) Commit() error { return tx.t.Commit() }

// CommitAsync requests commit and returns the decision channel.
func (tx *Txn) CommitAsync() <-chan error { return tx.t.CommitAsync() }

// Abort discards the transaction.
func (tx *Txn) Abort() { tx.t.Abort() }
