// Package obladi is a transactional key-value store that hides access
// patterns from its storage backend, implementing the system described in
// "Obladi: Oblivious Serializable Transactions in the Cloud" (OSDI 2018).
//
// A DB runs a trusted proxy: transactions execute under multiversioned
// timestamp ordering, commit decisions are delayed to the end of fixed
// epochs, and all storage traffic flows through a parallel Ring ORAM whose
// request pattern is independent of the workload. The key space can be
// hash-partitioned across multiple independent ORAM shards (Options.Shards),
// coordinated so cross-shard transactions still commit atomically while
// aggregate epoch capacity scales with the shard count. Storage can be
// embedded (in-memory) or remote obladi-storage servers reached over TCP
// (one per shard); either way the storage side never learns which keys are
// accessed, when, or how often — only the fixed batch schedule.
//
// Basic usage:
//
//	db, err := obladi.Open(obladi.Options{MaxKeys: 10000})
//	...
//	err = db.Update(func(tx *obladi.Txn) error {
//		v, _, err := tx.Read("balance/alice")
//		...
//		return tx.Write("balance/alice", newValue)
//	})
package obladi

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"obladi/internal/core"
	"obladi/internal/cryptoutil"
	"obladi/internal/ringoram"
	"obladi/internal/storage"
)

// Errors surfaced by transactions.
var (
	// ErrAborted reports that a transaction aborted (conflict, cascading
	// abort, epoch boundary, or shutdown). Retrying is usually appropriate.
	ErrAborted = core.ErrAborted
	// ErrEpochFull reports that an epoch ran out of batch capacity.
	ErrEpochFull = core.ErrEpochFull
	// ErrClosed reports use after Close.
	ErrClosed = core.ErrClosed
	// ErrValueTooLarge reports a value exceeding MaxValueSize.
	ErrValueTooLarge = core.ErrValueTooLarge
)

// Options configures a DB. The zero value is usable for small embedded
// stores; see DESIGN.md for how the batching parameters (Table 1 of the
// paper) should track the application's transaction shapes.
type Options struct {
	// MaxKeys bounds the number of distinct keys (ORAM capacity).
	// Default 8192.
	MaxKeys int
	// Shards partitions the key space by hash across this many independent
	// Ring ORAM instances, each with its own position map, stash, batch
	// quotas, recovery log, and storage backend. Transactions may span
	// shards and still commit atomically at the global epoch boundary; the
	// batching parameters below apply per shard, so aggregate epoch capacity
	// grows with the shard count. Default 1. See DESIGN.md ("Sharding").
	Shards int
	// MaxValueSize bounds value length in bytes. Default 256.
	MaxValueSize int
	// MaxKeySize bounds key length in bytes. Default 64.
	MaxKeySize int

	// ReadBatches (R), ReadBatchSize (bread) and WriteBatchSize (bwrite)
	// fix the epoch's observable shape. Defaults: 4, 32, 32.
	ReadBatches    int
	ReadBatchSize  int
	WriteBatchSize int
	// BatchInterval is Δ, the fixed batch cadence. Zero selects manual
	// mode, where the caller drives the schedule with Advance (useful for
	// tests and deterministic tools).
	BatchInterval time.Duration
	// EagerBatches fires a read batch as soon as it fills rather than
	// waiting out Δ. This makes the schedule load-dependent (observable);
	// use only for throughput experiments. Eager firing never moves the
	// epoch boundary, which always waits out its Δ slot.
	EagerBatches bool
	// SyncEpochBoundary disables epoch-boundary pipelining: every epoch's
	// write-back and durability round trips complete before the next
	// epoch's batches start, instead of overlapping them. Slower on
	// high-latency storage; useful as an ablation baseline.
	SyncEpochBoundary bool

	// Z, S, A tune the Ring ORAM (reals/dummies per bucket, eviction
	// rate). Zero selects 8/12/8, suitable for small stores; the paper's
	// cloud configuration is 100/196/168.
	Z, S, A int

	// RemoteAddr connects to obladi-storage servers instead of using
	// embedded in-memory storage. With Shards > 1 it must hold one
	// comma-separated address per shard; each server stores exactly one
	// shard's bucket tree and recovery log.
	RemoteAddr string
	// SimulatedLatency, when non-empty, wraps embedded storage with one of
	// the paper's latency profiles: "server" (0.3ms), "server-wan" (10ms),
	// "dynamo" (1/3ms, capped concurrency).
	SimulatedLatency string

	// DisableDurability turns off the recovery unit (no crash recovery).
	DisableDurability bool
	// FullCheckpointEvery sets the full-checkpoint cadence (default 16).
	FullCheckpointEvery int

	// KeySeed derives the encryption/MAC keys deterministically. Required
	// to reopen an existing store after a restart; nil generates a random
	// key (suitable only for stores that die with the process).
	KeySeed []byte

	// Parallelism caps concurrent storage requests. Default 64.
	Parallelism int
}

// DB is an oblivious transactional key-value store.
type DB struct {
	proxy    *core.Proxy
	backends []storage.Backend
}

// Open creates (or, when the backends' recovery logs hold a committed
// checkpoint, recovers) a DB.
func Open(opt Options) (*DB, error) {
	if opt.MaxKeys <= 0 {
		opt.MaxKeys = 8192
	}
	if opt.Shards <= 0 {
		opt.Shards = 1
	}
	if opt.MaxValueSize <= 0 {
		opt.MaxValueSize = 256
	}
	if opt.MaxKeySize <= 0 {
		opt.MaxKeySize = 64
	}
	if opt.Z <= 0 {
		opt.Z = 8
	}
	if opt.S <= 0 {
		opt.S = 12
	}
	if opt.A <= 0 {
		opt.A = 8
	}
	var key *cryptoutil.Key
	var err error
	if opt.KeySeed != nil {
		key = cryptoutil.KeyFromSeed(opt.KeySeed)
	} else {
		key, err = cryptoutil.NewKey()
		if err != nil {
			return nil, err
		}
	}
	// Each shard gets its own ORAM sized for its slice of the key space.
	// Hash partitioning is only near-uniform, so shards are provisioned with
	// headroom against realistic skew.
	perShard := (opt.MaxKeys + opt.Shards - 1) / opt.Shards
	if opt.Shards > 1 {
		perShard += perShard/4 + 16
	}
	params := ringoram.Params{
		NumBlocks: perShard,
		Z:         opt.Z,
		S:         opt.S,
		A:         opt.A,
		KeySize:   opt.MaxKeySize,
		ValueSize: opt.MaxValueSize,
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}

	var backends []storage.Backend
	if opt.RemoteAddr != "" {
		addrs := strings.Split(opt.RemoteAddr, ",")
		if len(addrs) != opt.Shards {
			return nil, fmt.Errorf("obladi: %d shards need %d comma-separated storage addresses in RemoteAddr, got %d", opt.Shards, opt.Shards, len(addrs))
		}
		backends, err = storage.DialMulti(addrs)
		if err != nil {
			return nil, err
		}
	} else {
		for i := 0; i < opt.Shards; i++ {
			mem := storage.NewMemBackend(params.Geometry().NumBuckets)
			var backend storage.Backend
			switch opt.SimulatedLatency {
			case "":
				backend = mem
			case "server":
				backend = storage.WithLatency(mem, storage.ProfileServer)
			case "server-wan":
				backend = storage.WithLatency(mem, storage.ProfileServerWAN)
			case "dynamo":
				backend = storage.WithLatency(mem, storage.ProfileDynamo)
			default:
				return nil, fmt.Errorf("obladi: unknown latency profile %q", opt.SimulatedLatency)
			}
			backends = append(backends, backend)
		}
	}

	proxy, err := core.NewSharded(backends, core.Config{
		Params:              params,
		Key:                 key,
		ReadBatches:         opt.ReadBatches,
		ReadBatchSize:       opt.ReadBatchSize,
		WriteBatchSize:      opt.WriteBatchSize,
		BatchInterval:       opt.BatchInterval,
		EagerBatches:        opt.EagerBatches,
		Boundary:            boundaryMode(opt),
		Parallelism:         opt.Parallelism,
		DisableDurability:   opt.DisableDurability,
		FullCheckpointEvery: opt.FullCheckpointEvery,
	})
	if err != nil {
		storage.CloseAll(backends)
		return nil, err
	}
	return &DB{proxy: proxy, backends: backends}, nil
}

func boundaryMode(opt Options) core.BoundaryMode {
	if opt.SyncEpochBoundary {
		return core.BoundarySync
	}
	return core.BoundaryAuto
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	return &Txn{t: db.proxy.Begin()}
}

// Update runs fn in a transaction and commits, retrying up to 10 times on
// aborts. fn must be idempotent.
func (db *DB) Update(fn func(*Txn) error) error {
	var last error
	for attempt := 0; attempt < 10; attempt++ {
		tx := db.Begin()
		if err := fn(tx); err != nil {
			tx.Abort()
			if errors.Is(err, ErrAborted) || errors.Is(err, ErrEpochFull) {
				last = err
				continue
			}
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAborted) && !errors.Is(err, ErrEpochFull) {
			return err
		}
		last = err
	}
	return last
}

// View runs fn in a transaction that is aborted afterwards (reads only take
// effect); retries like Update.
func (db *DB) View(fn func(*Txn) error) error {
	var last error
	for attempt := 0; attempt < 10; attempt++ {
		tx := db.Begin()
		err := fn(tx)
		tx.Abort()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrAborted) && !errors.Is(err, ErrEpochFull) {
			return err
		}
		last = err
	}
	return last
}

// Advance drives the batch schedule by one step in manual mode
// (BatchInterval == 0): the next read batch, or the epoch boundary.
func (db *DB) Advance() error { return db.proxy.Advance() }

// Epoch returns the current epoch number.
func (db *DB) Epoch() uint64 { return db.proxy.Epoch() }

// Shards returns the number of key-space partitions.
func (db *DB) Shards() int { return db.proxy.Shards() }

// Stats returns proxy counters.
func (db *DB) Stats() core.Stats { return db.proxy.Stats() }

// Close shuts the proxy down; in-flight transactions abort.
func (db *DB) Close() error {
	err := db.proxy.Close()
	if cerr := storage.CloseAll(db.backends); err == nil {
		err = cerr
	}
	return err
}

// Txn is a transaction handle. It must not be used concurrently.
type Txn struct {
	t *core.Txn
}

// Read returns the value visible to this transaction.
func (tx *Txn) Read(key string) (value []byte, found bool, err error) {
	return tx.t.Read(key)
}

// ReadMany reads independent keys in one batch round; results are parallel
// to keys. Prefer it over sequential Reads: each chain of dependent reads
// costs one read batch.
func (tx *Txn) ReadMany(keys []string) ([]KV, error) {
	res, err := tx.t.ReadMany(keys)
	if err != nil {
		return nil, err
	}
	out := make([]KV, len(res))
	for i, r := range res {
		out[i] = KV{Key: r.Key, Value: r.Value, Found: r.Found}
	}
	return out, nil
}

// KV is one ReadMany result.
type KV struct {
	Key   string
	Value []byte
	Found bool
}

// Write stores value under key.
func (tx *Txn) Write(key string, value []byte) error { return tx.t.Write(key, value) }

// Delete removes key.
func (tx *Txn) Delete(key string) error { return tx.t.Delete(key) }

// Commit requests commit and blocks until the epoch decides; nil means the
// transaction is durably committed.
func (tx *Txn) Commit() error { return tx.t.Commit() }

// CommitAsync requests commit and returns the decision channel.
func (tx *Txn) CommitAsync() <-chan error { return tx.t.CommitAsync() }

// Abort discards the transaction.
func (tx *Txn) Abort() { tx.t.Abort() }
