package obladi_test

// This file maps every table and figure of the paper's evaluation (§11)
// onto a Go benchmark. Each benchmark runs the corresponding experiment of
// internal/bench at CI scale and logs the series the paper plots; run
//
//	go test -bench=. -benchmem
//
// to regenerate all of them, or cmd/obladi-bench for full-scale runs.

import (
	"strings"
	"testing"

	"obladi"
	"obladi/internal/bench"
)

// benchCfg is the CI-scale configuration for benchmark runs.
func benchCfg() bench.Config {
	return bench.Config{Quick: true, LatencyScale: 0.25, Seed: 42}
}

// runExperiment executes one named experiment per benchmark iteration and
// logs its rows. The first (and usually only) iteration's primary metric is
// reported so `-bench` output carries a meaningful number.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Run(name, benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-10s %-16s %-14s %12.2f %s", r.Experiment, r.Series, r.X, r.Value, r.Unit)
			}
			if len(rows) > 0 {
				// ReportMetric units must not contain whitespace.
				unit := strings.ReplaceAll(rows[0].Unit, " ", "_")
				b.ReportMetric(rows[0].Value, unit)
			}
		}
	}
}

// BenchmarkFig9aApplicationThroughput regenerates Figure 9a: committed
// transactions per second for Obladi, NoPriv, MySQL, ObladiW, NoPrivW on
// TPC-C, FreeHealth, and SmallBank.
func BenchmarkFig9aApplicationThroughput(b *testing.B) { runExperiment(b, "fig9a") }

// BenchmarkFig9bApplicationLatency regenerates Figure 9b: mean committed
// transaction latency for the same matrix.
func BenchmarkFig9bApplicationLatency(b *testing.B) { runExperiment(b, "fig9b") }

// BenchmarkFig10aParallelism regenerates Figure 10a: sequential Ring ORAM
// vs the parallel executor (with and without encryption) across the four
// storage backends at batch size 500.
func BenchmarkFig10aParallelism(b *testing.B) { runExperiment(b, "fig10a") }

// BenchmarkFig10bBatchSizeThroughput regenerates Figure 10b: parallel ORAM
// throughput as the batch size sweeps upward.
func BenchmarkFig10bBatchSizeThroughput(b *testing.B) { runExperiment(b, "fig10b") }

// BenchmarkFig10cBatchSizeLatency regenerates Figure 10c: per-batch latency
// across the same sweep.
func BenchmarkFig10cBatchSizeLatency(b *testing.B) { runExperiment(b, "fig10c") }

// BenchmarkFig10dDelayedVisibility regenerates Figure 10d: buffered epoch
// write-back with bucket deduplication vs immediate write-through.
func BenchmarkFig10dDelayedVisibility(b *testing.B) { runExperiment(b, "fig10d") }

// BenchmarkFig10eEpochSizeORAM regenerates Figure 10e: relative throughput
// gain as the epoch grows in batches.
func BenchmarkFig10eEpochSizeORAM(b *testing.B) { runExperiment(b, "fig10e") }

// BenchmarkFig10fEpochSizeProxy regenerates Figure 10f: application
// throughput as a function of epoch duration.
func BenchmarkFig10fEpochSizeProxy(b *testing.B) { runExperiment(b, "fig10f") }

// BenchmarkFig11aCheckpointFrequency regenerates Figure 11a: throughput
// under durability as the full-checkpoint cadence varies.
func BenchmarkFig11aCheckpointFrequency(b *testing.B) { runExperiment(b, "fig11a") }

// BenchmarkTable11bRecovery regenerates Table 11b: recovery time breakdown
// (levels, slowdown, recovery time, log bytes, position/permutation map
// entries, path replay) by database size.
func BenchmarkTable11bRecovery(b *testing.B) { runExperiment(b, "table11b") }

// BenchmarkAblationEpochCommit measures the design decision DESIGN.md calls
// out: delayed epoch commit vs single-batch epochs.
func BenchmarkAblationEpochCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationEpochCommit(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-18s %-24s %12.2f %s", r.Series, r.X, r.Value, r.Unit)
			}
		}
	}
}

// BenchmarkAblationReadCache measures §6.3's version-cache serving on/off.
func BenchmarkAblationReadCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationReadCache(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-18s %-24s %12.2f %s", r.Series, r.X, r.Value, r.Unit)
			}
		}
	}
}

// BenchmarkPublicAPIUpdate measures the end-to-end public API on the
// embedded backend (not a paper figure; a library-user-facing number).
func BenchmarkPublicAPIUpdate(b *testing.B) {
	db, err := obladi.Open(obladi.Options{
		MaxKeys:       4096,
		KeySeed:       []byte("bench"),
		EagerBatches:  true,
		BatchInterval: 200_000, // 200µs
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.Update(func(tx *obladi.Txn) error {
			return tx.Write("bench-key", []byte("bench-value"))
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
