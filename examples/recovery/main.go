// Recovery: crash the proxy mid-epoch and recover. Committed epochs
// survive; the in-flight epoch aborts wholesale (fate sharing); and the
// recovery replay issues exactly the reads the storage server already
// observed, so the crash leaks nothing.
package main

import (
	"fmt"
	"log"
	"time"

	"obladi"
	"obladi/internal/storage"
)

func main() {
	// A storage "cloud" that outlives proxy crashes. Using the real TCP
	// server so the demo matches the deployment architecture.
	backend := storage.NewMemBackend(1 << 12)
	srv, err := storage.NewServer(backend, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("cloud storage up at %s\n", srv.Addr())

	opt := obladi.Options{
		MaxKeys:       512,
		RemoteAddr:    srv.Addr(),
		BatchInterval: 2 * time.Millisecond,
		KeySeed:       []byte("recovery-demo"), // the proxy's persistent secret
	}

	// Proxy instance #1: commit some data, then "crash" without Close.
	db1, err := obladi.Open(opt)
	if err != nil {
		log.Fatal(err)
	}
	err = db1.Update(func(tx *obladi.Txn) error {
		if err := tx.Write("ledger/2026-06-12", []byte("balance=1337")); err != nil {
			return err
		}
		return tx.Write("ledger/meta", []byte("v1"))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proxy #1: committed ledger entries")

	// Start a transaction that will be in flight at the crash.
	tx := db1.Begin()
	if err := tx.Write("ledger/meta", []byte("v2-DOOMED")); err != nil {
		log.Fatal(err)
	}
	go tx.Commit() // never completes: the proxy dies first
	time.Sleep(time.Millisecond)
	fmt.Println("proxy #1: CRASH (in-flight transaction lost)")
	// No Close: the proxy's memory — stash, version cache, buffered
	// writes — is simply gone, like a real process crash.

	// Proxy instance #2: same key seed, same storage. Open() finds the
	// committed checkpoint in the recovery log, rolls the shadow-paged
	// tree back, and replays the aborted epoch's logged reads.
	db2, err := obladi.Open(opt)
	if err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	defer db2.Close()
	fmt.Println("proxy #2: recovered from the durability log")

	err = db2.View(func(tx *obladi.Txn) error {
		v, found, err := tx.Read("ledger/2026-06-12")
		if err != nil {
			return err
		}
		fmt.Printf("  ledger/2026-06-12 = %q (found=%v)\n", v, found)
		m, _, err := tx.Read("ledger/meta")
		if err != nil {
			return err
		}
		fmt.Printf("  ledger/meta       = %q\n", m)
		if string(m) != "v1" {
			log.Fatal("the doomed write survived the crash!")
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed data intact; the in-flight write is gone (epoch fate sharing)")

	// New writes work normally after recovery.
	err = db2.Update(func(tx *obladi.Txn) error {
		return tx.Write("ledger/meta", []byte("v2"))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proxy #2: committed new writes — business as usual")
}
