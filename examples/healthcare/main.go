// Healthcare: the paper's motivating scenario — a medical practice keeps
// electronic health records in the cloud without revealing which patients
// are being treated, or how often. Chart lookups for an oncology patient
// are indistinguishable from any other access.
package main

import (
	"fmt"
	"log"
	"time"

	"obladi"
)

// chartKey addresses a patient's chart; visitKey one dated visit note.
func chartKey(patient string) string        { return "chart/" + patient }
func visitKey(patient string, n int) string { return fmt.Sprintf("visit/%s/%d", patient, n) }
func visitCountKey(patient string) string   { return "visits/" + patient }

func main() {
	db, err := obladi.Open(obladi.Options{
		MaxKeys:       4096,
		MaxValueSize:  512,
		BatchInterval: 2 * time.Millisecond,
		ReadBatches:   5, // FreeHealth-style: short read-mostly transactions
		KeySeed:       []byte("clinic-demo"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Admit patients. The oncology patient's chart is written exactly like
	// everyone else's: the storage trace is identical either way.
	patients := []struct{ name, condition string }{
		{"alice", "annual checkup"},
		{"bob", "stage II lymphoma"}, // the sensitive record
		{"carol", "sprained ankle"},
	}
	for _, p := range patients {
		p := p
		err := db.Update(func(tx *obladi.Txn) error {
			if err := tx.Write(chartKey(p.name), []byte(p.condition)); err != nil {
				return err
			}
			return tx.Write(visitCountKey(p.name), []byte("0"))
		})
		if err != nil {
			log.Fatalf("admitting %s: %v", p.name, err)
		}
	}
	fmt.Println("admitted 3 patients")

	// Bob attends frequent chemotherapy appointments. Against plain cloud
	// storage, this access frequency alone reveals the diagnosis; through
	// Obladi each visit is an indistinguishable batch slot.
	recordVisit := func(patient, note string) error {
		return db.Update(func(tx *obladi.Txn) error {
			cnt, found, err := tx.Read(visitCountKey(patient))
			if err != nil {
				return err
			}
			if !found {
				return fmt.Errorf("unknown patient %s", patient)
			}
			var n int
			fmt.Sscanf(string(cnt), "%d", &n)
			if err := tx.Write(visitKey(patient, n), []byte(note)); err != nil {
				return err
			}
			return tx.Write(visitCountKey(patient), []byte(fmt.Sprint(n+1)))
		})
	}
	for week := 1; week <= 4; week++ {
		if err := recordVisit("bob", fmt.Sprintf("chemo cycle %d", week)); err != nil {
			log.Fatal(err)
		}
	}
	if err := recordVisit("alice", "blood panel normal"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recorded 5 visits (4 of them bob's — invisible to storage)")

	// A consultation opens the full chart: one transaction, batched reads.
	err = db.View(func(tx *obladi.Txn) error {
		chart, _, err := tx.Read(chartKey("bob"))
		if err != nil {
			return err
		}
		cnt, _, err := tx.Read(visitCountKey("bob"))
		if err != nil {
			return err
		}
		var n int
		fmt.Sscanf(string(cnt), "%d", &n)
		keys := make([]string, n)
		for i := range keys {
			keys[i] = visitKey("bob", i)
		}
		visits, err := tx.ReadMany(keys)
		if err != nil {
			return err
		}
		fmt.Printf("bob's chart: %s\n", chart)
		for _, v := range visits {
			fmt.Printf("  - %s\n", v.Value)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("\nadversary's view: %d identical read batches, %d identical write batches —\n",
		st.ReadBatchSlots/uint64(32), st.Epochs)
	fmt.Println("no correlation between bob's appointment schedule and any storage access.")
}
