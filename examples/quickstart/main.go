// Quickstart: open an embedded oblivious store, run a few transactions
// (including asynchronous, pipelined reads and a context-bounded update),
// and inspect what the (untrusted) storage side would observe.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"obladi"
)

func main() {
	// An embedded store with default parameters. BatchInterval is Δ: read
	// batches fire every 2ms, so an epoch (4 batches + write-back) lasts
	// roughly 10ms — commit latency is epoch latency by design.
	db, err := obladi.Open(obladi.Options{
		MaxKeys:       1024,
		BatchInterval: 2 * time.Millisecond,
		KeySeed:       []byte("quickstart-demo"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Writes are transactional; Update retries on conflicts.
	err = db.Update(func(tx *obladi.Txn) error {
		if err := tx.Write("user/1/name", []byte("Ada")); err != nil {
			return err
		}
		return tx.Write("user/1/plan", []byte("premium"))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed user/1")

	// Reads see a serializable snapshot; ReadMany batches independent keys
	// into one ORAM round.
	err = db.View(func(tx *obladi.Txn) error {
		res, err := tx.ReadMany([]string{"user/1/name", "user/1/plan", "user/2/name"})
		if err != nil {
			return err
		}
		for _, kv := range res {
			if kv.Found {
				fmt.Printf("  %s = %s\n", kv.Key, kv.Value)
			} else {
				fmt.Printf("  %s = (absent)\n", kv.Key)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Asynchronous reads: ReadAsync registers the read and returns a Future
	// immediately, so independent reads issued back to back share one batch
	// even when the key set isn't known up front (ReadMany's requirement).
	err = db.View(func(tx *obladi.Txn) error {
		name := tx.ReadAsync("user/1/name")
		plan := tx.ReadAsync("user/1/plan")
		nv, _, err := name.Value()
		if err != nil {
			return err
		}
		pv, _, err := plan.Value()
		if err != nil {
			return err
		}
		fmt.Printf("  async: %s is on %s\n", nv, pv)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// A read-modify-write transaction, bounded by a deadline: if the store
	// cannot decide the commit in time, UpdateCtx returns instead of
	// blocking — and the oblivious schedule is unaffected either way.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err = db.UpdateCtx(ctx, func(tx *obladi.Txn) error {
		v, found, err := tx.Read("user/1/plan")
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("user vanished")
		}
		return tx.Write("user/1/plan", append(v, []byte("+support")...))
	})
	if err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("epochs=%d committed=%d aborted=%d\n", st.Epochs, st.Committed, st.Aborted)
	fmt.Printf("storage observed %d read-batch slots, of which only %d carried real requests;\n",
		st.ReadBatchSlots, st.RealReads)
	fmt.Printf("the rest were padding — the access pattern reveals nothing about the keys above.\n")
}
