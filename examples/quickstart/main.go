// Quickstart: open an embedded oblivious store, run a few transactions, and
// inspect what the (untrusted) storage side would observe.
package main

import (
	"fmt"
	"log"
	"time"

	"obladi"
)

func main() {
	// An embedded store with default parameters. BatchInterval is Δ: read
	// batches fire every 2ms, so an epoch (4 batches + write-back) lasts
	// roughly 10ms — commit latency is epoch latency by design.
	db, err := obladi.Open(obladi.Options{
		MaxKeys:       1024,
		BatchInterval: 2 * time.Millisecond,
		KeySeed:       []byte("quickstart-demo"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Writes are transactional; Update retries on conflicts.
	err = db.Update(func(tx *obladi.Txn) error {
		if err := tx.Write("user/1/name", []byte("Ada")); err != nil {
			return err
		}
		return tx.Write("user/1/plan", []byte("premium"))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed user/1")

	// Reads see a serializable snapshot; ReadMany batches independent keys
	// into one ORAM round.
	err = db.View(func(tx *obladi.Txn) error {
		res, err := tx.ReadMany([]string{"user/1/name", "user/1/plan", "user/2/name"})
		if err != nil {
			return err
		}
		for _, kv := range res {
			if kv.Found {
				fmt.Printf("  %s = %s\n", kv.Key, kv.Value)
			} else {
				fmt.Printf("  %s = (absent)\n", kv.Key)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// A read-modify-write transaction.
	err = db.Update(func(tx *obladi.Txn) error {
		v, found, err := tx.Read("user/1/plan")
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("user vanished")
		}
		return tx.Write("user/1/plan", append(v, []byte("+support")...))
	})
	if err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("epochs=%d committed=%d aborted=%d\n", st.Epochs, st.Committed, st.Aborted)
	fmt.Printf("storage observed %d read-batch slots, of which only %d carried real requests;\n",
		st.ReadBatchSlots, st.RealReads)
	fmt.Printf("the rest were padding — the access pattern reveals nothing about the keys above.\n")
}
