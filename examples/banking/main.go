// Banking: concurrent money transfers under serializable isolation.
// Demonstrates conflict handling (MVTSO aborts + retries) and the
// end-of-run conservation check, SmallBank-style.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"obladi"
)

const (
	accounts       = 16
	initialBalance = 1000
	clients        = 6
	transfersEach  = 10
)

func accountKey(i int) string { return fmt.Sprintf("acct/%02d", i) }

func main() {
	db, err := obladi.Open(obladi.Options{
		MaxKeys:        256,
		BatchInterval:  time.Millisecond,
		EagerBatches:   true,
		WriteBatchSize: 64,
		KeySeed:        []byte("bank-demo"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Open accounts.
	err = db.Update(func(tx *obladi.Txn) error {
		for i := 0; i < accounts; i++ {
			if err := tx.Write(accountKey(i), []byte(fmt.Sprint(initialBalance))); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened %d accounts with $%d each\n", accounts, initialBalance)

	// Concurrent clients transfer money; conflicting transfers abort and
	// retry (delayed-visibility commits decide fates at epoch boundaries).
	transfer := func(from, to, amount int) error {
		return db.Update(func(tx *obladi.Txn) error {
			res, err := tx.ReadMany([]string{accountKey(from), accountKey(to)})
			if err != nil {
				return err
			}
			var balFrom, balTo int
			fmt.Sscanf(string(res[0].Value), "%d", &balFrom)
			fmt.Sscanf(string(res[1].Value), "%d", &balTo)
			if balFrom < amount {
				return nil // declined, but still a valid transaction
			}
			if err := tx.Write(accountKey(from), []byte(fmt.Sprint(balFrom-amount))); err != nil {
				return err
			}
			return tx.Write(accountKey(to), []byte(fmt.Sprint(balTo+amount)))
		})
	}

	var done, failed int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < transfersEach; i++ {
				from := (c + i) % accounts
				to := (c*3 + i*7 + 1) % accounts
				if from == to {
					to = (to + 1) % accounts
				}
				if err := transfer(from, to, 25); err != nil {
					if errors.Is(err, obladi.ErrAborted) {
						atomic.AddInt64(&failed, 1)
						continue
					}
					log.Fatal(err)
				}
				atomic.AddInt64(&done, 1)
			}
		}(c)
	}
	wg.Wait()
	fmt.Printf("transfers: %d committed, %d gave up after retries\n", done, failed)

	// Conservation: the total must be exactly accounts * initialBalance.
	var total int
	err = db.View(func(tx *obladi.Txn) error {
		total = 0
		keys := make([]string, accounts)
		for i := range keys {
			keys[i] = accountKey(i)
		}
		res, err := tx.ReadMany(keys)
		if err != nil {
			return err
		}
		for _, kv := range res {
			var b int
			fmt.Sscanf(string(kv.Value), "%d", &b)
			total += b
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	want := accounts * initialBalance
	fmt.Printf("total funds: $%d (expected $%d)\n", total, want)
	if total != want {
		log.Fatal("MONEY NOT CONSERVED — serializability violated")
	}
	st := db.Stats()
	fmt.Printf("epochs=%d committed=%d aborted=%d conflictAborts=%d\n",
		st.Epochs, st.Committed, st.Aborted, st.ConflictAborts)
}
