// Command obladi-storage runs the untrusted cloud storage server: an ORAM
// bucket tree with shadow paging, the recovery log, and a plain KV namespace
// for the NoPriv baseline, served over TCP.
//
// The server stores only ciphertext and padded, encrypted log records; it
// learns nothing about the workload beyond Obladi's fixed batch schedule.
//
// Usage:
//
//	obladi-storage -listen :7000 -buckets 65536 [-latency server-wan]
//	obladi-storage -listen :7000 -buckets 65536 -data-dir /var/lib/obladi
//	obladi-storage -listen :7000 -buckets 65536 -data-dir /var/lib/obladi -shards 2
//
// With -data-dir the server runs the durable DiskBackend: an incrementally
// persisted, crash-atomic store (shadow-paged bucket heap, segmented
// fsync-barriered recovery log, KV journal) that recovers to the last
// committed epoch after a crash or SIGKILL. The legacy -persist flag keeps
// the whole-store snapshot behaviour for the in-memory backend; the two are
// mutually exclusive.
//
// With -shards N (N > 1, requires -data-dir) the server runs N disk shards
// under one data dir as a commit group: their recovery-log streams multiplex
// onto one shared physical log and every durability barrier routes through
// one fsync scheduler, so a sharded proxy's epoch-boundary flushes coalesce
// into shared waves instead of paying one fsync per shard. Shard i is served
// on the base port + i (or on its own ephemeral port when the base port is
// 0; each shard prints its address).
//
// With -logheap (requires -shards and -data-dir) the group runs the
// log-structured bucket heap: bucket versions ride the same physical log as
// the WAL streams, so a cross-shard epoch commit is one deferred record per
// shard plus a single fsync. The two heap layouts are on-disk incompatible;
// a dir written by one fails loudly when opened as the other.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"obladi/internal/pprofserve"
	"obladi/internal/storage"
)

func main() {
	listen := flag.String("listen", ":7000", "address to listen on")
	buckets := flag.Int("buckets", 1<<16, "number of ORAM buckets to provision (must cover the proxy's tree)")
	latency := flag.String("latency", "", "inject a latency profile for experiments: server | server-wan | dynamo")
	scale := flag.Float64("latency-scale", 1.0, "scale factor applied to the injected latency profile")
	persist := flag.String("persist", "", "snapshot file: loaded on start if present, saved on shutdown (in-memory backend)")
	dataDir := flag.String("data-dir", "", "directory for the durable disk backend (incremental, crash-atomic persistence)")
	shards := flag.Int("shards", 1, "disk shards sharing the data dir as a commit group (requires -data-dir); shard i listens on the base port + i")
	logHeap := flag.Bool("logheap", false, "log-structured bucket heap: bucket data rides the shared physical log, one fsync per epoch commit (requires -shards)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables profiling)")
	flag.Parse()

	if addr, err := pprofserve.Start(*pprofAddr); err != nil {
		log.Fatalf("pprof listen: %v", err)
	} else if addr != "" {
		fmt.Printf("obladi-storage: pprof on http://%s/debug/pprof/\n", addr)
	}
	if *persist != "" && *dataDir != "" {
		log.Fatal("-persist and -data-dir are mutually exclusive")
	}
	if *shards < 1 {
		log.Fatalf("-shards must be at least 1 (got %d)", *shards)
	}
	if *shards > 1 {
		if *dataDir == "" {
			log.Fatal("-shards needs -data-dir (group commit is a disk-backend deployment)")
		}
		serveGroup(*dataDir, *shards, *buckets, *listen, *latency, *scale, *logHeap)
		return
	}
	if *logHeap {
		log.Fatal("-logheap needs -shards > 1 (the unified log is a group deployment)")
	}
	var backend storage.Backend
	var mem *storage.MemBackend
	if *dataDir != "" {
		disk, err := storage.OpenDiskBackend(*dataDir, *buckets)
		if err != nil {
			log.Fatalf("opening data dir %s: %v", *dataDir, err)
		}
		defer disk.Close()
		fmt.Printf("obladi-storage: durable store in %s (committed epoch %d)\n", *dataDir, disk.CommittedEpoch())
		backend = disk
	} else {
		mem = storage.NewMemBackend(*buckets)
		if *persist != "" {
			if loaded, err := storage.LoadMemBackend(*persist); err == nil {
				mem = loaded
				n, _ := mem.NumBuckets()
				fmt.Printf("obladi-storage: restored %d buckets from %s\n", n, *persist)
			} else if !os.IsNotExist(err) {
				// A corrupt snapshot must not be silently ignored.
				if _, statErr := os.Stat(*persist); statErr == nil {
					log.Fatalf("loading snapshot %s: %v", *persist, err)
				}
			}
		}
		backend = mem
	}
	backend = wrapLatency(backend, *latency, *scale)

	srv, err := storage.NewServer(backend, *listen)
	if err != nil {
		log.Fatalf("starting storage server: %v", err)
	}
	fmt.Printf("obladi-storage: serving %d buckets on %s\n", *buckets, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	if s == syscall.SIGTERM {
		// Graceful drain: stop accepting and give in-flight proxy requests
		// (an epoch boundary's flush, a WAL barrier) a grace window to
		// finish, so a rolling restart doesn't tear a boundary mid-commit.
		fmt.Println("obladi-storage: SIGTERM, draining")
		if err := srv.Drain(5 * time.Second); err != nil {
			log.Print(err)
		}
	} else {
		fmt.Println("obladi-storage: shutting down")
		if err := srv.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *persist != "" && mem != nil {
		if err := mem.SaveTo(*persist); err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
		fmt.Printf("obladi-storage: state saved to %s\n", *persist)
	}
}

// wrapLatency injects the requested latency profile (empty = none).
func wrapLatency(b storage.Backend, latency string, scale float64) storage.Backend {
	switch latency {
	case "":
		return b
	case "server":
		return storage.WithLatency(b, storage.ProfileServer.Scaled(scale))
	case "server-wan":
		return storage.WithLatency(b, storage.ProfileServerWAN.Scaled(scale))
	case "dynamo":
		return storage.WithLatency(b, storage.ProfileDynamo.Scaled(scale))
	default:
		log.Fatalf("unknown latency profile %q", latency)
		return nil
	}
}

// serveGroup runs the N-shard commit-group deployment: one DiskGroup under
// dataDir, each shard's shared-log view served by its own TCP server. All
// client traffic goes through the views — raw shard access would bypass the
// shared physical log — so cross-shard barriers keep coalescing end to end.
func serveGroup(dataDir string, shards, buckets int, listen, latency string, scale float64, logHeap bool) {
	g, err := storage.OpenDiskGroupOpts(dataDir, shards, buckets, storage.DiskOptions{LogHeap: logHeap})
	if err != nil {
		log.Fatalf("opening %d-shard group in %s: %v", shards, dataDir, err)
	}
	defer g.Close()
	host, portStr, err := net.SplitHostPort(listen)
	if err != nil {
		log.Fatalf("parsing -listen %q: %v", listen, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		log.Fatalf("-listen %q needs a numeric port with -shards (shard i is served on port+i): %v", listen, err)
	}
	fmt.Printf("obladi-storage: %d-shard commit group in %s (committed epochs:", shards, dataDir)
	views := g.Backends()
	for _, be := range views {
		// The view, not the raw shard: in logheap mode the raw shard's heap
		// epoch is always 0 (bucket data lives in the shared log).
		fmt.Printf(" %d", be.(interface{ CommittedEpoch() uint64 }).CommittedEpoch())
	}
	fmt.Println(")")
	servers := make([]*storage.Server, 0, shards)
	for i, be := range views {
		shardPort := 0
		if port != 0 {
			shardPort = port + i
		}
		srv, err := storage.NewServer(wrapLatency(be, latency, scale), net.JoinHostPort(host, strconv.Itoa(shardPort)))
		if err != nil {
			log.Fatalf("starting shard %d server: %v", i, err)
		}
		servers = append(servers, srv)
		fmt.Printf("obladi-storage: shard %d serving %d buckets on %s\n", i, buckets, srv.Addr())
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	if s == syscall.SIGTERM {
		fmt.Println("obladi-storage: SIGTERM, draining")
		var wg sync.WaitGroup
		for _, srv := range servers {
			wg.Add(1)
			go func(srv *storage.Server) {
				defer wg.Done()
				if err := srv.Drain(5 * time.Second); err != nil {
					log.Print(err)
				}
			}(srv)
		}
		wg.Wait()
		return
	}
	fmt.Println("obladi-storage: shutting down")
	for _, srv := range servers {
		if err := srv.Close(); err != nil {
			log.Print(err)
		}
	}
}
