// Command obladi-storage runs the untrusted cloud storage server: an ORAM
// bucket tree with shadow paging, the recovery log, and a plain KV namespace
// for the NoPriv baseline, served over TCP.
//
// The server stores only ciphertext and padded, encrypted log records; it
// learns nothing about the workload beyond Obladi's fixed batch schedule.
//
// Usage:
//
//	obladi-storage -listen :7000 -buckets 65536 [-latency server-wan]
//	obladi-storage -listen :7000 -buckets 65536 -data-dir /var/lib/obladi
//
// With -data-dir the server runs the durable DiskBackend: an incrementally
// persisted, crash-atomic store (shadow-paged bucket heap, segmented
// fsync-barriered recovery log, KV journal) that recovers to the last
// committed epoch after a crash or SIGKILL. The legacy -persist flag keeps
// the whole-store snapshot behaviour for the in-memory backend; the two are
// mutually exclusive.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"obladi/internal/storage"
)

func main() {
	listen := flag.String("listen", ":7000", "address to listen on")
	buckets := flag.Int("buckets", 1<<16, "number of ORAM buckets to provision (must cover the proxy's tree)")
	latency := flag.String("latency", "", "inject a latency profile for experiments: server | server-wan | dynamo")
	scale := flag.Float64("latency-scale", 1.0, "scale factor applied to the injected latency profile")
	persist := flag.String("persist", "", "snapshot file: loaded on start if present, saved on shutdown (in-memory backend)")
	dataDir := flag.String("data-dir", "", "directory for the durable disk backend (incremental, crash-atomic persistence)")
	flag.Parse()

	if *persist != "" && *dataDir != "" {
		log.Fatal("-persist and -data-dir are mutually exclusive")
	}
	var backend storage.Backend
	var mem *storage.MemBackend
	if *dataDir != "" {
		disk, err := storage.OpenDiskBackend(*dataDir, *buckets)
		if err != nil {
			log.Fatalf("opening data dir %s: %v", *dataDir, err)
		}
		defer disk.Close()
		fmt.Printf("obladi-storage: durable store in %s (committed epoch %d)\n", *dataDir, disk.CommittedEpoch())
		backend = disk
	} else {
		mem = storage.NewMemBackend(*buckets)
		if *persist != "" {
			if loaded, err := storage.LoadMemBackend(*persist); err == nil {
				mem = loaded
				n, _ := mem.NumBuckets()
				fmt.Printf("obladi-storage: restored %d buckets from %s\n", n, *persist)
			} else if !os.IsNotExist(err) {
				// A corrupt snapshot must not be silently ignored.
				if _, statErr := os.Stat(*persist); statErr == nil {
					log.Fatalf("loading snapshot %s: %v", *persist, err)
				}
			}
		}
		backend = mem
	}
	switch *latency {
	case "":
	case "server":
		backend = storage.WithLatency(backend, storage.ProfileServer.Scaled(*scale))
	case "server-wan":
		backend = storage.WithLatency(backend, storage.ProfileServerWAN.Scaled(*scale))
	case "dynamo":
		backend = storage.WithLatency(backend, storage.ProfileDynamo.Scaled(*scale))
	default:
		log.Fatalf("unknown latency profile %q", *latency)
	}

	srv, err := storage.NewServer(backend, *listen)
	if err != nil {
		log.Fatalf("starting storage server: %v", err)
	}
	fmt.Printf("obladi-storage: serving %d buckets on %s\n", *buckets, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("obladi-storage: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	if *persist != "" && mem != nil {
		if err := mem.SaveTo(*persist); err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
		fmt.Printf("obladi-storage: state saved to %s\n", *persist)
	}
}
