// Command obladi-proxy runs the trusted Obladi proxy, connecting on-site
// clients to an (untrusted) obladi-storage server. Clients speak one of the
// two protocols of internal/clientproto over the same port, auto-detected
// per connection from its first byte:
//
// The multiplexed v2 protocol (clientproto.DialMux) — a length-prefixed
// binary framing that carries many concurrent transaction sessions per
// connection and pipelines requests without waiting for replies. This is
// what applications and the `client` benchmark should use.
//
// The legacy line protocol — one transaction session per connection, one
// synchronous round trip per command:
//
//	BEGIN
//	READ <key>
//	WRITE <key> <hex-value>
//	DELETE <key>
//	COMMIT
//	ABORT
//
// Responses are single lines: OK [hex-value|NONE] or ERR <message>.
//
// Usage:
//
//	obladi-proxy -storage localhost:7000 -listen :7100 -keys 8192 -seed s3cret
//
// Sharded deployment (one obladi-storage server per shard):
//
//	obladi-proxy -shards 4 -storage host0:7000,host1:7000,host2:7000,host3:7000
//
// High availability (hot standby with sub-second failover):
//
//	obladi-proxy -storage host:7000 -seed s3cret -replica-listen :7200
//	obladi-proxy -storage host:7000 -seed s3cret -standby-of primary:7200
//
// The standby claims its client port immediately (so clients can list both
// proxies in a static failover address list), replicates the primary's
// recovery log, and serves transactions after promoting on lease expiry.
// Client connections made before promotion wait in the accept queue and are
// served once the standby promotes — a client dialing into the failover
// window sees latency, not errors.
//
// SIGTERM drains gracefully: client sessions stop being accepted, the
// current epoch seals and commits, and every accepted transaction resolves
// truthfully before exit. SIGINT (and SIGKILL) keep the abrupt fate-sharing
// path that crash recovery — and failover — are built to absorb.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"obladi"
	"obladi/internal/clientproto"
	"obladi/internal/pprofserve"
)

func main() {
	storageAddr := flag.String("storage", "localhost:7000", "obladi-storage server address(es); one per shard, comma-separated")
	listen := flag.String("listen", ":7100", "address for client connections")
	shards := flag.Int("shards", 1, "key-space partitions (requires one storage address per shard)")
	keys := flag.Int("keys", 8192, "maximum distinct keys (ORAM capacity, across all shards)")
	valueSize := flag.Int("value-size", 256, "maximum value size in bytes")
	seed := flag.String("seed", "", "key seed (required to recover an existing store)")
	interval := flag.Duration("batch-interval", 5*time.Millisecond, "read batch interval Δ")
	readBatches := flag.Int("read-batches", 4, "read batches per epoch (R)")
	readBatch := flag.Int("read-batch-size", 32, "read batch size (bread)")
	writeBatch := flag.Int("write-batch-size", 32, "write batch size (bwrite)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables profiling)")
	replicaListen := flag.String("replica-listen", "", "listen here for a hot standby and replicate the recovery log to it")
	replicaAck := flag.Bool("replica-ack", false, "gate commit acks on standby receipt (replica-acked mode; needs -replica-listen)")
	standbyOf := flag.String("standby-of", "", "run as hot standby of the primary replicating at this address; promote on lease expiry")
	lease := flag.Duration("lease", 750*time.Millisecond, "standby promotes after this long without a frame from the primary")
	maxSessions := flag.Int("max-sessions-per-conn", 0, "shed transaction sessions beyond this many per client connection (0 = default cap)")
	maxPendingReads := flag.Int("max-pending-reads", 0, "per-session cap on outstanding async reads; excess applies read-loop backpressure (0 = default)")
	noAdmission := flag.Bool("no-admission", false, "disable epoch admission control: queue reads without bound instead of shedding at the slot budget")
	flag.Parse()

	if addr, err := pprofserve.Start(*pprofAddr); err != nil {
		log.Fatalf("pprof listen: %v", err)
	} else if addr != "" {
		fmt.Printf("obladi-proxy: pprof on http://%s/debug/pprof/\n", addr)
	}

	opt := obladi.Options{
		MaxKeys:        *keys,
		Shards:         *shards,
		MaxValueSize:   *valueSize,
		ReadBatches:    *readBatches,
		ReadBatchSize:  *readBatch,
		WriteBatchSize: *writeBatch,
		BatchInterval:  *interval,
		RemoteAddr:     *storageAddr,
		ReplicaListen:  *replicaListen,
		ReplicaAcked:   *replicaAck,
		LeaseTimeout:   *lease,

		DisableAdmission: *noAdmission,
	}
	srvOpt := clientproto.ServerOptions{
		MaxSessionsPerConn:        *maxSessions,
		MaxPendingReadsPerSession: *maxPendingReads,
	}
	if *seed != "" {
		opt.KeySeed = []byte(*seed)
	}

	var db *obladi.DB
	var err error
	if *standbyOf != "" {
		if *seed == "" {
			log.Fatalf("-standby-of requires -seed (must match the primary's)")
		}
		// Claim the client port before promotion so clients can hold a
		// static failover address list: connections wait in the accept
		// queue and are served once the standby becomes primary.
		ln, lerr := net.Listen("tcp", *listen)
		if lerr != nil {
			log.Fatalf("listen: %v", lerr)
		}
		fmt.Printf("obladi-proxy: standby of %s, clients=%s (queued until promotion)\n", *standbyOf, ln.Addr())
		db, err = obladi.OpenStandby(context.Background(), *standbyOf, opt)
		if err != nil {
			log.Fatalf("standby: %v", err)
		}
		fmt.Printf("obladi-proxy: promoted to primary (replayed %d logged reads)\n", db.Stats().RecoveryReplayed)
		serve(db, clientproto.NewServerListenerOpts(clientproto.WrapDB(db), ln, srvOpt), *storageAddr, *interval, *readBatches)
		return
	}

	db, err = obladi.Open(opt)
	if err != nil {
		log.Fatalf("opening store: %v", err)
	}
	if addr := db.ReplicaAddr(); addr != "" {
		fmt.Printf("obladi-proxy: replica=%s (hot standby attach point)\n", addr)
	}
	srv, err := clientproto.NewServerOpts(clientproto.WrapDB(db), *listen, srvOpt)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	serve(db, srv, *storageAddr, *interval, *readBatches)
}

func serve(db *obladi.DB, srv *clientproto.Server, storageAddr string, interval time.Duration, readBatches int) {
	fmt.Printf("obladi-proxy: shards=%d storage=%s clients=%s epoch≈%v\n",
		db.Shards(), storageAddr, srv.Addr(), interval*time.Duration(readBatches))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	if s == syscall.SIGTERM {
		// Graceful drain: stop accepting, let in-flight sessions finish
		// against the sealing epoch, commit it, then exit.
		fmt.Printf("obladi-proxy: SIGTERM, draining\n")
		srv.Close()
		if err := db.Shutdown(); err != nil {
			log.Printf("obladi-proxy: drain: %v", err)
		}
	} else {
		srv.Close()
		db.Close()
	}
	st := db.Stats()
	fmt.Printf("obladi-proxy: %d epochs, %d committed, %d aborted, %d reads shed\n",
		st.Epochs, st.Committed, st.Aborted, st.ShedReads)
}
