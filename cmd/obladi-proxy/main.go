// Command obladi-proxy runs the trusted Obladi proxy, connecting on-site
// clients to an (untrusted) obladi-storage server. Clients speak one of the
// two protocols of internal/clientproto over the same port, auto-detected
// per connection from its first byte:
//
// The multiplexed v2 protocol (clientproto.DialMux) — a length-prefixed
// binary framing that carries many concurrent transaction sessions per
// connection and pipelines requests without waiting for replies. This is
// what applications and the `client` benchmark should use.
//
// The legacy line protocol — one transaction session per connection, one
// synchronous round trip per command:
//
//	BEGIN
//	READ <key>
//	WRITE <key> <hex-value>
//	DELETE <key>
//	COMMIT
//	ABORT
//
// Responses are single lines: OK [hex-value|NONE] or ERR <message>.
//
// Usage:
//
//	obladi-proxy -storage localhost:7000 -listen :7100 -keys 8192 -seed s3cret
//
// Sharded deployment (one obladi-storage server per shard):
//
//	obladi-proxy -shards 4 -storage host0:7000,host1:7000,host2:7000,host3:7000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"obladi"
	"obladi/internal/clientproto"
	"obladi/internal/pprofserve"
)

func main() {
	storageAddr := flag.String("storage", "localhost:7000", "obladi-storage server address(es); one per shard, comma-separated")
	listen := flag.String("listen", ":7100", "address for client connections")
	shards := flag.Int("shards", 1, "key-space partitions (requires one storage address per shard)")
	keys := flag.Int("keys", 8192, "maximum distinct keys (ORAM capacity, across all shards)")
	valueSize := flag.Int("value-size", 256, "maximum value size in bytes")
	seed := flag.String("seed", "", "key seed (required to recover an existing store)")
	interval := flag.Duration("batch-interval", 5*time.Millisecond, "read batch interval Δ")
	readBatches := flag.Int("read-batches", 4, "read batches per epoch (R)")
	readBatch := flag.Int("read-batch-size", 32, "read batch size (bread)")
	writeBatch := flag.Int("write-batch-size", 32, "write batch size (bwrite)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables profiling)")
	flag.Parse()

	if addr, err := pprofserve.Start(*pprofAddr); err != nil {
		log.Fatalf("pprof listen: %v", err)
	} else if addr != "" {
		fmt.Printf("obladi-proxy: pprof on http://%s/debug/pprof/\n", addr)
	}

	opt := obladi.Options{
		MaxKeys:        *keys,
		Shards:         *shards,
		MaxValueSize:   *valueSize,
		ReadBatches:    *readBatches,
		ReadBatchSize:  *readBatch,
		WriteBatchSize: *writeBatch,
		BatchInterval:  *interval,
		RemoteAddr:     *storageAddr,
	}
	if *seed != "" {
		opt.KeySeed = []byte(*seed)
	}
	db, err := obladi.Open(opt)
	if err != nil {
		log.Fatalf("opening store: %v", err)
	}
	defer db.Close()

	srv, err := clientproto.NewServer(clientproto.WrapDB(db), *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	fmt.Printf("obladi-proxy: shards=%d storage=%s clients=%s epoch≈%v\n",
		db.Shards(), *storageAddr, srv.Addr(), *interval*time.Duration(*readBatches))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
	st := db.Stats()
	fmt.Printf("obladi-proxy: %d epochs, %d committed, %d aborted\n", st.Epochs, st.Committed, st.Aborted)
}
