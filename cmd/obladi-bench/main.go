// Command obladi-bench regenerates the tables and figures of the paper's
// evaluation (§11). Each experiment prints the same series the paper plots;
// shapes (ratios, crossovers) should reproduce, absolute numbers depend on
// the host and the latency scale.
//
// Usage:
//
//	obladi-bench -list
//	obladi-bench -experiment fig10a [-quick] [-latency-scale 0.25]
//	obladi-bench -experiment vector -json [-json-dir results]
//	obladi-bench -experiment all
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"obladi/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	experiment := flag.String("experiment", "all", "experiment id (see -list) or 'all'")
	quick := flag.Bool("quick", false, "CI-scale data sizes and run lengths")
	scale := flag.Float64("latency-scale", 0, "storage latency scale factor (0 = default)")
	seed := flag.Uint64("seed", 42, "random seed")
	scaleSessions := flag.Int("scale-sessions", 0, "override the scale experiment's session sweep with one point (0 = default sweep)")
	jsonOut := flag.Bool("json", false, "also write BENCH_<experiment>.json with machine-readable results")
	jsonDir := flag.String("json-dir", ".", "directory for -json output files")
	flag.Parse()

	if *list {
		for _, name := range bench.Names() {
			fmt.Printf("%-10s %s\n", name, bench.Describe(name))
		}
		return
	}
	cfg := bench.Config{Quick: *quick, LatencyScale: *scale, Seed: *seed, ScaleSessions: *scaleSessions}

	names := bench.Names()
	if *experiment != "all" {
		names = []string{*experiment}
	}
	for _, name := range names {
		fmt.Printf("== %s: %s\n", name, bench.Describe(name))
		start := time.Now()
		rows, err := bench.Run(name, cfg)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if err := bench.Print(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
		if *jsonOut {
			path := filepath.Join(*jsonDir, fmt.Sprintf("BENCH_%s.json", name))
			if err := bench.WriteJSON(path, name, rows); err != nil {
				log.Fatalf("%s: writing %s: %v", name, path, err)
			}
			fmt.Printf("-- results written to %s\n", path)
		}
		fmt.Printf("-- %s done in %v\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
